"""Federated training configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.nn.schedules import ConstantLR, LRSchedule

__all__ = ["ConfigError", "EMPTY_ROUND_MODES", "EXECUTOR_BACKENDS", "FLConfig"]


class ConfigError(ValueError):
    """A structured configuration rejection.

    Raised when two individually valid knobs are incompatible (e.g. a
    :class:`~repro.fl.store.ClientStateStore` with the process
    executor).  Beyond the message, carries machine-readable fields so
    tooling and tests can assert on the *constraint* instead of
    string-matching prose:

    - ``constraint``: short kebab-case name of the violated rule;
    - ``supported``: the values that would have been accepted.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        constraint: Optional[str] = None,
        supported: tuple = (),
    ) -> None:
        super().__init__(message)
        self.constraint = constraint
        self.supported = tuple(supported)

#: Client-execution backends (see :mod:`repro.fl.executor`):
#: "serial"  -- one shared workspace, clients run back to back;
#: "thread"  -- a thread pool over replica workspaces;
#: "process" -- a persistent worker-process pool with the broadcast
#:              parameters in shared memory;
#: "batched" -- same-schedule clients stacked into one leading client
#:              axis, each round step one set of large numpy kernels
#:              (see :mod:`repro.fl.batched`).
#: All four produce bitwise-identical run histories.
EXECUTOR_BACKENDS = ("serial", "thread", "process", "batched")

#: What to do in a round where every update was filtered out.
#: "keep"  -- leave the model unchanged and reuse the previous feedback
#:            (the literal reading of Algorithm 1; with few clients this
#:            can freeze the feedback and stall the run permanently);
#: "force_best" -- upload the single highest-scoring update anyway, so
#:            the model never fully stalls (the default: at the paper's
#:            100-client scale some update always passes, so this rescue
#:            only matters for small federations).
EMPTY_ROUND_MODES = ("keep", "force_best")


@dataclass
class FLConfig:
    """Hyper-parameters of a federated run.

    Mirrors the paper's Sec. V-A setup: ``local_epochs`` is the paper's
    E (passes over the local dataset per round), ``batch_size`` its B,
    and the learning-rate schedule defaults to a constant but is set to
    ``InverseSqrtLR`` by the experiments that follow the paper.
    """

    rounds: int = 100
    local_epochs: int = 4
    batch_size: int = 2
    lr: LRSchedule = field(default_factory=lambda: ConstantLR(0.05))
    eval_every: int = 1
    eval_batch_size: int = 256
    on_empty_round: str = "force_best"
    weighted_aggregation: bool = False
    seed: int = 0
    #: Runtime sanitizer: reject NaN/Inf in client updates and in the
    #: aggregated global delta, naming the offending client and round.
    check_finite: bool = False
    #: Client-execution backend for the compute half of each round.
    executor: str = "serial"
    #: Worker count for the thread/process backends; 0 = os.cpu_count().
    executor_workers: int = 0
    #: Structured tracing (see :mod:`repro.obs`).  Off by default: the
    #: trainer then runs on the allocation-free NullTracer.
    trace: bool = False
    #: Where to stream the JSONL trace; a path implies ``trace`` on.
    #: With ``trace=True`` and no path, events collect in memory
    #: (``trainer.tracer.memory_events()``).
    trace_path: Optional[str] = None
    #: Head-sampling rate for per-client spans (``client_compute``,
    #: ``relevance_check``): the fraction of (round, client) pairs whose
    #: spans are emitted, decided by a pure hash of
    #: ``(seed, round, client_index)``.  1.0 (default) keeps every span;
    #: at population scale set e.g. 0.01 — unsampled clients still feed
    #: the exact per-round ``round_rollup`` event, and ``trace_digest``
    #: stays a pure function of the run at any rate.
    trace_sample: float = 1.0
    #: Directory for periodic run-state checkpoints (see
    #: :mod:`repro.ckpt`); None disables checkpointing.
    checkpoint_dir: Optional[str] = None
    #: Save a checkpoint every N completed rounds.
    checkpoint_every: int = 1
    #: How many checkpoints to retain (oldest pruned first); 0 = all.
    checkpoint_keep: int = 3

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if self.on_empty_round not in EMPTY_ROUND_MODES:
            raise ValueError(
                f"on_empty_round must be one of {EMPTY_ROUND_MODES}, "
                f"got {self.on_empty_round!r}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_BACKENDS}, "
                f"got {self.executor!r}"
            )
        if self.executor_workers < 0:
            raise ValueError("executor_workers must be >= 0 (0 = cpu count)")
        if self.trace_path is not None and not str(self.trace_path):
            raise ValueError("trace_path must be a non-empty path or None")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ValueError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.checkpoint_dir is not None and not str(self.checkpoint_dir):
            raise ValueError("checkpoint_dir must be a non-empty path or None")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.checkpoint_keep < 0:
            raise ValueError("checkpoint_keep must be >= 0 (0 = keep all)")

    @property
    def trace_enabled(self) -> bool:
        """Tracing is on when either knob is set."""
        return bool(self.trace or self.trace_path)

    @property
    def checkpoint_enabled(self) -> bool:
        """Checkpointing is on when a directory is configured."""
        return self.checkpoint_dir is not None
