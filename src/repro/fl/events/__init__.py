"""repro.fl.events — the deterministic asynchronous federation engine.

A discrete-event coordinator over a virtual clock: client compute
latencies come from pure per-(round, client) hash streams, results are
admitted as they arrive, and aggregation is staleness-weighted under a
hard bound S (``S=0`` reproduces the synchronous trainer bitwise).
See DESIGN.md §6g for the event-schedule determinism contract and the
README's "Async federation & event-triggered uploads" section for a
worked example.
"""

from repro.fl.events.clock import VirtualClock
from repro.fl.events.config import AsyncConfig
from repro.fl.events.engine import AsyncFederatedTrainer
from repro.fl.events.latency import ClientTiming, LatencyModel
from repro.fl.events.queue import ARRIVAL, DISPATCH, Event, EventQueue

__all__ = [
    "ARRIVAL",
    "DISPATCH",
    "AsyncConfig",
    "AsyncFederatedTrainer",
    "ClientTiming",
    "Event",
    "EventQueue",
    "LatencyModel",
    "VirtualClock",
]
