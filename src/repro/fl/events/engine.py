"""The deterministic discrete-event federation engine (ROADMAP #1).

:class:`AsyncFederatedTrainer` wraps a
:class:`~repro.fl.trainer.FederatedTrainer` and replaces its
synchronous barrier with an event loop over a virtual timeline:

- a **dispatch** event selects round ``t``'s cohort and runs its
  compute half (:meth:`FederatedTrainer._begin_round`), then draws each
  client's simulated round-trip from its own pure latency stream and
  schedules the **arrival** events;
- an **arrival** admits one client's upload; when every surviving
  upload of the *oldest* open round has arrived, that round **closes**
  — the strictly ordered decide/aggregate half
  (:meth:`FederatedTrainer._finish_round`), staleness-weighted;
- round ``r`` may dispatch only once round ``r - 1 - S`` has closed
  (the bounded-staleness gate), so at most ``S + 1`` rounds are in
  flight and every aggregation's staleness lies in ``[0, S]``.

Everything on the timeline is a pure function of (seed, config): the
latency streams are hash-derived per (round, client), the event queue
is totally ordered, and closes happen in round order.  Two modes:

- ``S = 0`` — the *synchronous-equivalence* mode.  Exactly one round
  is in flight, the engine opens/closes the same ``round`` spans the
  synchronous loop does and emits none of the ``async.*`` instruments,
  so history, parameters and ``trace_digest`` are **bitwise** the
  synchronous trainer's (asserted in ``tests/test_events_engine.py``).
- ``S > 0`` — bounded staleness.  Rounds overlap; the engine emits
  ``dispatch``/``admit``/``round_close`` spans and the ``async.*``
  metrics instead of ``round`` spans (the tracer's span stack is
  strictly nested, which overlapping rounds cannot honour), store
  views are written back at dispatch (a later round may check the same
  client out again while this one is in flight), and the merge is
  scaled by ``w(s) = 1 / (1 + s) ** alpha``.

Checkpoints capture the virtual clock, the event queue and every
in-flight round's computed results (recomputing them on resume would
re-emit their ``client_compute`` spans and fork the trace digest), so
a SIGKILLed async run resumes bitwise (``tests/test_events_resume.py``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.fl.client import ClientUpdate
from repro.fl.events.clock import VirtualClock
from repro.fl.events.config import AsyncConfig
from repro.fl.events.latency import ClientTiming, LatencyModel
from repro.fl.events.queue import ARRIVAL, DISPATCH, Event, EventQueue
from repro.fl.history import RunHistory
from repro.fl.trainer import FederatedTrainer, RoundState
from repro.obs import RoundRollup

__all__ = ["AsyncFederatedTrainer"]


@dataclass(frozen=True)
class _CohortRef:
    """A participant rebuilt from a checkpoint: the close half only
    needs the id (store views were already retired at dispatch)."""

    client_id: int


@dataclass
class _InflightRound:
    """One dispatched-but-not-closed round."""

    state: RoundState
    dispatch_time: float
    closes_at_dispatch: int
    pending: Set[int] = field(default_factory=set)
    arrived: List[int] = field(default_factory=list)
    dropped: Set[int] = field(default_factory=set)


class AsyncFederatedTrainer:
    """Event-driven federation over a wrapped synchronous trainer.

    The wrapped trainer owns every federation component (server,
    policy, executor, store, tracer, checkpointer); this engine owns
    only the timeline.  ``trainer.async_engine`` is set so checkpoints
    taken through the trainer's own machinery capture the engine state
    alongside (see :func:`repro.ckpt.state.capture_run_state`).
    """

    def __init__(
        self,
        trainer: FederatedTrainer,
        async_config: Optional[AsyncConfig] = None,
    ) -> None:
        self.trainer = trainer  # ckpt: transient — captured via its own run state
        self.async_config = async_config if async_config is not None else AsyncConfig()
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.latency = LatencyModel(  # ckpt: transient — pure streams, no state
            seed=trainer.config.seed,
            n_params=trainer.server.n_params,
            link=self.async_config.link,
            compute=self.async_config.compute,
            speed_sigma=self.async_config.speed_sigma,
            drop_rate=self.async_config.drop_rate,
        )
        self.sync_mode = self.async_config.sync_equivalent  # ckpt: transient — derived from config
        self.closes_done = len(trainer.history)
        self.next_dispatch = self.closes_done + 1
        self.last_dispatch_time: Optional[float] = None
        self.target_rounds = 0  # ckpt: transient — run()-scoped target
        self._inflight: Dict[int, _InflightRound] = {}
        self._handlers: Dict[int, Any] = {}  # ckpt: transient — rebound every construction
        self.register_handler(DISPATCH, self._on_dispatch)
        self.register_handler(ARRIVAL, self._on_arrival)
        self._dispatch_pending = False  # ckpt: transient — derived from the queue on restore
        self._just_closed: List[int] = []  # ckpt: transient — drained within one event
        self._open_round_span = None  # ckpt: transient — live span handle (S=0 mode)
        trainer.async_engine = self

    # -- wiring ----------------------------------------------------------

    @property
    def tracer(self):
        return self.trainer.tracer

    @property
    def history(self) -> RunHistory:
        return self.trainer.history

    def register_handler(self, kind: int, handler) -> None:
        """Bind ``handler`` to event ``kind``.

        Registered handlers are concurrent entry points of the event
        loop; the ``shared-state-race`` lint rule analyzes everything
        reachable from them exactly like worker-pool entry points.
        """
        self._handlers[int(kind)] = handler

    # -- the event loop --------------------------------------------------

    def run(self, rounds: Optional[int] = None) -> RunHistory:
        """Close ``rounds`` more rounds (default: the configured count).

        Mirrors :meth:`FederatedTrainer.run`: same run-span attributes,
        same per-close checkpoint schedule, and a restored engine
        continues the checkpointed trace's still-open ``run`` span.  On
        return nothing is in flight — every dispatched round has
        closed — so the engine is at a consistent (checkpointable)
        boundary between ``run`` calls.
        """
        trainer = self.trainer
        total = trainer.config.rounds if rounds is None else rounds
        if total < 1:
            raise ValueError("rounds must be >= 1")
        start = len(trainer.history) + 1
        self.target_rounds = self.closes_done + total
        run_span = trainer._resume_span
        trainer._resume_span = None
        if run_span is None:
            run_span = self.tracer.span(
                "run",
                policy=trainer.policy.name,
                rounds=total,
                start_iteration=start,
            )
            run_span.__enter__()
        run_span.set_rt("backend", trainer.executor.name)
        run_span.set_rt("workers", getattr(trainer.executor, "n_workers", 1))
        try:
            self._maybe_schedule_dispatch()
            while self.closes_done < self.target_rounds:
                event = self.queue.pop()
                self.clock.advance_to(event.time)
                self._handlers[event.kind](event)
                # Checkpoints happen here, between events: the handler
                # has returned, spans are closed, clock and queue are
                # consistent — the same boundary the synchronous loop
                # saves at.  One arrival can close several rounds
                # back-to-back; only the last is saved (the earlier
                # closes share this exact state), named for it.
                if self._just_closed:
                    closed = self._just_closed[-1]
                    self._just_closed.clear()
                    if trainer.checkpointer is not None:
                        trainer.checkpointer.maybe_save(trainer, closed)
        finally:
            run_span.__exit__(*sys.exc_info())
        return trainer.history

    def _dispatch_allowed(self, iteration: int) -> bool:
        """The bounded-staleness gate for dispatching ``iteration``."""
        bound = self.async_config.staleness_bound
        return self.closes_done >= iteration - 1 - bound

    def _maybe_schedule_dispatch(self, count_deferred: bool = False) -> None:
        """Queue the next round's dispatch if the gate allows it now.

        When the gate blocks, nothing is queued — the close that
        eventually satisfies it calls back in here.  ``count_deferred``
        (set by the dispatch handler) accounts the block once per
        round in ``async.deferred_dispatches``.
        """
        iteration = self.next_dispatch
        if iteration > self.target_rounds or self._dispatch_pending:
            return
        if not self._dispatch_allowed(iteration):
            if count_deferred and not self.sync_mode and self.tracer.enabled:
                self.tracer.metrics.counter("async.deferred_dispatches").inc()
            return
        time = self.clock.now
        if self.last_dispatch_time is not None:
            time = max(
                time,
                self.last_dispatch_time + self.async_config.dispatch_interval_s,
            )
        self.queue.push(Event(time, DISPATCH, iteration))
        self._dispatch_pending = True

    # -- handlers --------------------------------------------------------

    def _on_dispatch(self, event: Event) -> None:
        """Start round ``event.iteration``: compute, then schedule arrivals."""
        trainer = self.trainer
        t = event.iteration
        self._dispatch_pending = False
        if self.sync_mode:
            # Exactly the synchronous loop's round span, entered here
            # and exited when the round closes — with one round in
            # flight the spans nest just as run_round's would.
            span = self.tracer.span("round", iteration=t)
            span.__enter__()
            try:
                state = trainer._begin_round(t, span)
            except BaseException:
                if self.tracer.enabled:
                    self.tracer.rollup = None
                span.__exit__(*sys.exc_info())
                raise
            self._open_round_span = span
        else:
            state = trainer._begin_round(t, None)
            # The rollup slot is only consumed inside run_round; park
            # it on the inflight state so overlapping rounds cannot
            # cross-feed.
            if self.tracer.enabled:
                self.tracer.rollup = None
            if trainer.store is not None:
                # Retire the views now: a later dispatch may check the
                # same client out again while this round is in flight
                # (checkout refuses a client that is still out).
                trainer.store.writeback(state.views)
        inflight = _InflightRound(
            state=state,
            dispatch_time=self.clock.now,
            closes_at_dispatch=self.closes_done,
        )
        timings: Dict[int, ClientTiming] = {}
        for client, result in zip(state.participants, state.results):
            timings[client.client_id] = self.latency.timing(
                t, client.client_id, result.n_samples,
                trainer.config.local_epochs,
            )
        if timings and all(tm.dropped for tm in timings.values()):
            # All-dropped rescue: a fully dead round could never close.
            # The fastest upload lands anyway (ids break latency ties).
            rescue = min(
                timings, key=lambda cid: (timings[cid].latency_s, cid)
            )
            timings[rescue] = ClientTiming(
                dropped=False, latency_s=timings[rescue].latency_s
            )
        for client in state.participants:
            cid = client.client_id
            timing = timings[cid]
            if timing.dropped:
                inflight.dropped.add(cid)
            else:
                inflight.pending.add(cid)
                self.queue.push(
                    Event(self.clock.now + timing.latency_s, ARRIVAL, t, cid)
                )
        self._inflight[t] = inflight
        self.last_dispatch_time = self.clock.now
        if not self.sync_mode and self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("async.dispatches").inc()
            if inflight.dropped:
                metrics.counter("async.drops").inc(len(inflight.dropped))
            metrics.gauge("async.virtual_time").set(self.clock.now)
            self.tracer.record_span(
                "dispatch",
                attrs={
                    "iteration": t,
                    "n_participants": len(state.participants),
                    "virtual_time": self.clock.now,
                },
            )
        self.next_dispatch += 1
        self._maybe_schedule_dispatch(count_deferred=True)

    def _on_arrival(self, event: Event) -> None:
        """Admit one upload; close every round that became complete."""
        inflight = self._inflight[event.iteration]
        inflight.pending.remove(event.client_id)
        inflight.arrived.append(event.client_id)
        if not self.sync_mode and self.tracer.enabled:
            self.tracer.metrics.counter("async.arrivals").inc()
            if self.tracer.span_sampled(event.iteration, event.client_id):
                self.tracer.record_span(
                    "admit",
                    attrs={
                        "iteration": event.iteration,
                        "client_id": event.client_id,
                        "virtual_time": self.clock.now,
                    },
                )
        # Closes run strictly in round order: a fully arrived round
        # waits until every earlier round has closed, so the decide/
        # aggregate reduction order is a pure function of the schedule.
        while True:
            oldest = self.closes_done + 1
            candidate = self._inflight.get(oldest)
            if candidate is None or candidate.pending:
                break
            self._close_round(oldest, candidate)
            self._maybe_schedule_dispatch()

    def _close_round(self, iteration: int, inflight: _InflightRound) -> None:
        """The decide/aggregate half for a fully arrived round."""
        trainer = self.trainer
        state = inflight.state
        if inflight.dropped:
            # Churn: dropped uploads never reach the server — not even
            # a status message.  Participant order is preserved for the
            # survivors, so the reduction stays deterministic.
            keep = [
                i
                for i, client in enumerate(state.participants)
                if client.client_id not in inflight.dropped
            ]
            state.participants = [state.participants[i] for i in keep]
            state.results = [state.results[i] for i in keep]
        if self.sync_mode:
            span = self._open_round_span
            self._open_round_span = None
            try:
                trainer._finish_round(state, span)
            except BaseException:
                if self.tracer.enabled:
                    self.tracer.rollup = None
                span.__exit__(*sys.exc_info())
                raise
            if self.tracer.enabled:
                self.tracer.rollup = None
            span.__exit__(None, None, None)
        else:
            staleness = (iteration - 1) - inflight.closes_at_dispatch
            trainer._finish_round(
                state,
                None,
                staleness=staleness,
                virtual_time=self.clock.now,
                merge_scale=self.async_config.merge_weight(staleness),
                store_writeback=False,
            )
            if self.tracer.enabled:
                metrics = self.tracer.metrics
                metrics.counter("async.closes").inc()
                metrics.histogram("async.staleness").observe(float(staleness))
                metrics.gauge("async.virtual_time").set(self.clock.now)
                self.tracer.record_span(
                    "round_close",
                    attrs={
                        "iteration": iteration,
                        "staleness": staleness,
                        "n_arrived": len(state.participants),
                        "virtual_time": self.clock.now,
                    },
                )
        del self._inflight[iteration]
        self.closes_done += 1
        self._just_closed.append(iteration)

    # -- checkpoint capture/restore --------------------------------------

    def export_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """(JSON-safe manifest, arrays) for a bitwise resume.

        In-flight rounds are captured as their already *computed*
        results — re-running their compute halves on resume would
        re-emit ``client_compute`` spans the trace already carries and
        fork the digest.  Legal at event boundaries only (between
        handler invocations), which is when the trainer's checkpointer
        fires.
        """
        manifest: Dict[str, Any] = {
            "staleness_bound": self.async_config.staleness_bound,
            "clock": self.clock.state_dict(),
            "queue": self.queue.state_dict(),
            "closes_done": self.closes_done,
            "next_dispatch": self.next_dispatch,
            "last_dispatch_time": self.last_dispatch_time,
            "inflight": [],
        }
        arrays: Dict[str, np.ndarray] = {}
        for t, inflight in sorted(self._inflight.items()):
            state = inflight.state
            manifest["inflight"].append(
                {
                    "iteration": t,
                    "lr": state.lr,
                    "dispatch_time": inflight.dispatch_time,
                    "closes_at_dispatch": inflight.closes_at_dispatch,
                    "participants": [
                        c.client_id for c in state.participants
                    ],
                    "n_samples": [r.n_samples for r in state.results],
                    "train_losses": [r.train_loss for r in state.results],
                    "pending": sorted(inflight.pending),
                    "arrived": list(inflight.arrived),
                    "dropped": sorted(inflight.dropped),
                }
            )
            arrays[f"async/{t}/global_params"] = state.global_params
            arrays[f"async/{t}/feedback"] = state.feedback
            for result in state.results:
                arrays[f"async/{t}/update/{result.client_id}"] = result.update
        return manifest, arrays

    def restore_state(
        self, state: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> None:
        """Apply an :meth:`export_state` snapshot to this engine."""
        if int(state["staleness_bound"]) != self.async_config.staleness_bound:
            raise ValueError(
                f"checkpoint was taken with staleness_bound="
                f"{state['staleness_bound']}, this engine is configured "
                f"with {self.async_config.staleness_bound}"
            )
        self.clock.load_state_dict(state["clock"])
        self.queue.load_state_dict(state["queue"])
        self.closes_done = int(state["closes_done"])
        self.next_dispatch = int(state["next_dispatch"])
        last = state["last_dispatch_time"]
        self.last_dispatch_time = None if last is None else float(last)
        self._inflight = {}
        for entry in state["inflight"]:
            t = int(entry["iteration"])
            participants = [
                _CohortRef(int(cid)) for cid in entry["participants"]
            ]
            results = [
                ClientUpdate(
                    client_id=int(cid),
                    update=arrays[f"async/{t}/update/{int(cid)}"],
                    n_samples=int(n),
                    train_loss=float(loss),
                )
                for cid, n, loss in zip(
                    entry["participants"],
                    entry["n_samples"],
                    entry["train_losses"],
                )
            ]
            # A fresh rollup: its deterministic side is fed entirely at
            # close time, so the emitted round_rollup attrs are bitwise
            # the uninterrupted run's; the lost wall-clock side lives
            # under rt, which the deterministic view masks anyway.
            rollup = RoundRollup(t) if self.tracer.enabled else None
            round_state = RoundState(
                iteration=t,
                lr=float(entry["lr"]),
                feedback=arrays[f"async/{t}/feedback"],
                global_params=arrays[f"async/{t}/global_params"],
                participants=participants,
                results=results,
                views=[],
                rollup=rollup,
            )
            inflight = _InflightRound(
                state=round_state,
                dispatch_time=float(entry["dispatch_time"]),
                closes_at_dispatch=int(entry["closes_at_dispatch"]),
            )
            inflight.pending = {int(c) for c in entry["pending"]}
            inflight.arrived = [int(c) for c in entry["arrived"]]
            inflight.dropped = {int(c) for c in entry["dropped"]}
            self._inflight[t] = inflight
        self._dispatch_pending = self.queue.has_kind(DISPATCH)

    @classmethod
    def restore(
        cls,
        path: Union[str, "Any"],
        *,
        async_config: Optional[AsyncConfig] = None,
        **parts: Any,
    ) -> "AsyncFederatedTrainer":
        """Rebuild an engine (and its trainer) from a checkpoint.

        ``parts`` are the federation constructor kwargs
        :meth:`FederatedTrainer.restore` expects; ``async_config`` must
        match the checkpointed run's.  The resumed engine's next event
        is exactly the one the killed run would have processed next.
        """
        from repro.ckpt import read_checkpoint

        trainer = FederatedTrainer.restore(path, **parts)
        engine = cls(trainer, async_config=async_config)
        ckpt = read_checkpoint(path)
        async_state = ckpt.manifest.get("async")
        if async_state is None:
            raise ValueError(
                f"checkpoint {path} carries no async-engine state; "
                "was it written by a synchronous run?"
            )
        engine.restore_state(async_state, ckpt.arrays)
        return engine

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Release the wrapped trainer's resources."""
        self.trainer.close()

    def __enter__(self) -> "AsyncFederatedTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"AsyncFederatedTrainer(S={self.async_config.staleness_bound}, "
            f"closes_done={self.closes_done}, "
            f"inflight={sorted(self._inflight)})"
        )
