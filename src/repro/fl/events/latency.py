"""Per-(round, client) virtual latencies and churn.

Each ``(iteration, client)`` pair owns a dedicated hash-derived RNG
stream — ``SeedSequence(entropy=(seed, STREAM_TAG, iteration,
client_id))``, the same stream idiom :mod:`repro.fl.store` uses for
client training RNGs, under its own domain tag so latency draws can
never collide with (or consume from) a training stream.  A client's
simulated round-trip is therefore a pure function of (seed, config):
the event schedule it induces is bitwise-reproducible on any backend
and across resumes, with *no RNG object to checkpoint*.

The cost model reuses :mod:`repro.emu.network`: download the global
model over the link, train (``NodeComputeModel`` seconds scaled by a
lognormal per-draw speed factor — the straggler knob), upload the
update.  Churn is a Bernoulli drop per (round, client): a dropped
client still computes (the device worked; its upload never landed) but
its result is discarded and its arrival never scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.emu.network import MOBILE_LINK, LinkModel, NodeComputeModel
from repro.nn.serialization import update_nbytes

__all__ = ["ClientTiming", "LatencyModel", "STREAM_TAG"]

#: Entropy-domain tag separating latency streams from every other
#: SeedSequence family in the tree (client stores use bare
#: ``(seed, index)``).
STREAM_TAG = 0x1A7E9C


@dataclass(frozen=True)
class ClientTiming:
    """One client's simulated fate in one round."""

    dropped: bool
    latency_s: float


class LatencyModel:
    """Draws :class:`ClientTiming` from pure per-(round, client) streams."""

    def __init__(
        self,
        seed: int,
        n_params: int,
        link: Optional[LinkModel] = None,
        compute: Optional[NodeComputeModel] = None,
        speed_sigma: float = 0.5,
        drop_rate: float = 0.0,
    ) -> None:
        if n_params < 1:
            raise ValueError("n_params must be >= 1")
        if speed_sigma < 0.0:
            raise ValueError(f"speed_sigma must be >= 0, got {speed_sigma}")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1), got {drop_rate}")
        self.seed = int(seed)
        self.n_params = int(n_params)
        self.link = link if link is not None else MOBILE_LINK
        self.compute = compute if compute is not None else NodeComputeModel()
        self.speed_sigma = float(speed_sigma)
        self.drop_rate = float(drop_rate)

    def timing(
        self,
        iteration: int,
        client_id: int,
        n_samples: int,
        local_epochs: int,
    ) -> ClientTiming:
        """The (drop decision, round-trip latency) for one dispatch.

        A fresh generator per call, from the pair's own SeedSequence:
        no state survives between calls, so the draw order across
        clients/rounds cannot matter.  The drop decision is drawn
        first, then the speed factor — both always consumed, so a
        dropped client's latency is still defined (the all-dropped
        rescue needs it).
        """
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=(self.seed, STREAM_TAG, int(iteration), int(client_id))
            )
        )
        dropped = bool(rng.random() < self.drop_rate)
        model_bytes = update_nbytes(self.n_params)
        down = self.link.transfer_time(model_bytes)
        train = self.compute.local_training_time(n_samples, local_epochs)
        if self.speed_sigma > 0.0:
            train *= float(np.exp(self.speed_sigma * rng.standard_normal()))
        up = self.link.transfer_time(model_bytes)
        return ClientTiming(dropped=dropped, latency_s=down + train + up)

    def __repr__(self) -> str:
        return (
            f"LatencyModel(seed={self.seed}, n_params={self.n_params}, "
            f"speed_sigma={self.speed_sigma}, drop_rate={self.drop_rate})"
        )
