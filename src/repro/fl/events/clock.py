"""The engine's virtual clock.

Simulation time is a pure function of (seed, config): it advances only
to event times drawn from the deterministic latency streams, never from
the wall clock.  The determinism contract (DESIGN.md §6g) keeps the
two time bases strictly apart — virtual times may appear in
deterministic event ``attrs``, wall-clock readings only under ``rt``.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonically advancing simulated seconds."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance_to(self, time_s: float) -> None:
        """Move to ``time_s``; simulated time never runs backwards."""
        time_s = float(time_s)
        if time_s < self.now:
            raise ValueError(
                f"cannot advance the virtual clock backwards: "
                f"{time_s} < {self.now}"
            )
        self.now = time_s

    def state_dict(self) -> Dict[str, Any]:
        return {"now": self.now}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.now = float(state["now"])

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now})"
