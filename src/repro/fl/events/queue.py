"""The engine's event queue: a totally ordered min-heap.

Events sort by ``(time, kind, iteration, client_id)`` — a *total*
order, so the pop sequence is unambiguous whatever insertion order the
handlers used, and bitwise-identical across runs and resumes.  At equal
times arrivals (kind 0) are processed before dispatches (kind 1): a
result that lands exactly when the next round would start is admitted
first, which is what lets the S=0 mode interleave close-then-dispatch
exactly like the synchronous loop.

Round closes are deliberately *not* heap events — the engine triggers
them in round order from the arrival handler, so a close can never be
reordered against the arrival that completed it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["ARRIVAL", "DISPATCH", "Event", "EventQueue"]

#: Event kinds, in tie-break priority order (lower pops first).
ARRIVAL = 0
DISPATCH = 1

_KINDS = (ARRIVAL, DISPATCH)


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence on the virtual timeline."""

    time: float
    kind: int
    iteration: int
    client_id: int = -1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind}")


class EventQueue:
    """Deterministic min-heap of :class:`Event`."""

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        if not self._heap:
            raise IndexError("peek into an empty event queue")
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self):
        """The pending events in sorted (pop) order."""
        return iter(sorted(self._heap))

    def has_kind(self, kind: int) -> bool:
        """Whether any pending event is of ``kind``."""
        return any(event.kind == kind for event in self._heap)

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot: the pending events in sorted order."""
        return {
            "events": [
                [e.time, e.kind, e.iteration, e.client_id] for e in self
            ]
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._heap = [
            Event(
                time=float(t), kind=int(k), iteration=int(i), client_id=int(c)
            )
            for t, k, i, c in state["events"]
        ]
        heapq.heapify(self._heap)

    def __repr__(self) -> str:
        return f"EventQueue({len(self._heap)} pending)"
