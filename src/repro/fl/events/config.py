"""Knobs of the asynchronous engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.emu.network import LinkModel, NodeComputeModel

__all__ = ["AsyncConfig"]


@dataclass(frozen=True)
class AsyncConfig:
    """Configuration of one :class:`~repro.fl.events.AsyncFederatedTrainer`.

    ``staleness_bound`` is the hard bound S: round ``r`` may dispatch
    only once every round up to ``r - 1 - S`` has closed, so at most
    ``S + 1`` rounds are ever in flight and any round aggregates with
    staleness in ``[0, S]``.  ``S = 0`` is the synchronous-equivalence
    mode — one round in flight, histories and traces bitwise identical
    to :class:`~repro.fl.trainer.FederatedTrainer`'s.

    ``staleness_alpha`` shapes the merge weight ``w(s) = 1 / (1 + s) **
    alpha``; ``w(0)`` is exactly 1.0, which takes the server's unscaled
    code path.  ``dispatch_interval_s`` spaces dispatches on the
    virtual timeline (0 = dispatch as soon as the bound allows);
    ``drop_rate``/``speed_sigma`` and the link/compute models feed the
    :class:`~repro.fl.events.latency.LatencyModel`.
    """

    staleness_bound: int = 0
    staleness_alpha: float = 1.0
    dispatch_interval_s: float = 0.0
    drop_rate: float = 0.0
    speed_sigma: float = 0.5
    link: Optional[LinkModel] = None
    compute: Optional[NodeComputeModel] = None

    def __post_init__(self) -> None:
        if self.staleness_bound < 0:
            raise ValueError(
                f"staleness_bound must be >= 0, got {self.staleness_bound}"
            )
        if self.staleness_alpha < 0.0:
            raise ValueError(
                f"staleness_alpha must be >= 0, got {self.staleness_alpha}"
            )
        if self.dispatch_interval_s < 0.0:
            raise ValueError(
                f"dispatch_interval_s must be >= 0, "
                f"got {self.dispatch_interval_s}"
            )
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )
        if self.speed_sigma < 0.0:
            raise ValueError(
                f"speed_sigma must be >= 0, got {self.speed_sigma}"
            )

    @property
    def sync_equivalent(self) -> bool:
        """True in the S=0 bitwise-equivalence mode."""
        return self.staleness_bound == 0

    def merge_weight(self, staleness: int) -> float:
        """w(s) = 1 / (1 + s) ** alpha; exactly 1.0 at s = 0."""
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        if staleness == 0:
            return 1.0
        return 1.0 / (1.0 + staleness) ** self.staleness_alpha
