"""Sharded, array-backed client-state store: the population model.

The paper's cross-device regime has millions of enrolled devices of
which only a tiny cohort participates per round.  Holding one live
:class:`~repro.fl.client.FLClient` per enrolled device makes "pool
size" the dominant cost; this module inverts that: the *population* is
rows in contiguous numpy arrays, and Python objects exist only for the
clients of the current round.

Layout.  A population of P clients is split into fixed-size shards of
``shard_size`` rows.  Each shard owns three (optionally four) arrays,
allocated lazily the first time any of its clients is touched:

* ``rng``   — ``uint64 (rows, 6)``: the PCG64 counter state of each
  client's stream (state hi/lo, increment hi/lo, ``has_uint32``,
  ``uinteger``), exactly the fields of ``Generator.bit_generator
  .state`` — so a row round-trips a stream bitwise;
* ``live``  — ``bool (rows,)``: whether the row holds a captured
  stream; a dead row's stream is defined by the seed scheme below, so
  untouched clients cost nothing and touch order cannot matter;
* ``stats`` — ``int64 (rows, 3)``: participations, uploads, last
  participation round;
* ``feedback`` — ``uint8 (rows, packed_sign_nbytes(n_params))``: the
  packed sign bit-planes (:func:`repro.core.feedback.pack_signs`) of
  the global-update feedback each client last trained against — 2 bits
  per parameter instead of a float64 vector per client.

Fresh streams are a pure function of ``(seed, client_index)`` via
``SeedSequence``, never of when a client first participates: two runs
that touch different shards in different orders still agree on every
stream.

Laziness contract.  :meth:`ClientStateStore.checkout` materializes
:class:`StoreClient` views (real ``FLClient`` subclasses — every
executor backend accepts them unchanged) for exactly the requested
indices; :meth:`ClientStateStore.writeback` captures the advanced RNG
streams into the shard rows and releases the views.  Between a
checkout and its writeback the store refuses to snapshot
(:meth:`state_arrays` raises): shard arrays are only consistent at
round boundaries, the same place checkpoints are legal.  Shard arrays
are **coordinator-owned** state — worker-reachable code must never
write them (enforced by the ``shared-state-race`` flow rule's store
boundary; see DESIGN.md §6f).

Data stays shared: a :class:`DataPartition` maps a client index to its
shard of a common dataset.  :class:`CyclicPartition` is O(1) state per
population (contiguous wrap-around slices — views, not copies);
:class:`IndexedPartition` compacts explicit per-client index lists
into one contiguous index array; :class:`ExplicitPartition` adopts
prebuilt datasets (the :meth:`ClientStateStore.from_clients` parity
path).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.feedback import pack_signs, packed_sign_nbytes, unpack_signs
from repro.data.dataset import Dataset
from repro.fl.client import FLClient

__all__ = [
    "ClientStateStore",
    "CyclicPartition",
    "DataPartition",
    "DEFAULT_SHARD_SIZE",
    "ExplicitPartition",
    "IndexedPartition",
    "StoreClient",
]

#: Rows per shard.  Large enough that shard bookkeeping is negligible,
#: small enough that touching a 100-client cohort in a 1M-population
#: materializes kilobytes, not the pool.
DEFAULT_SHARD_SIZE = 4096

_U64 = (1 << 64) - 1


def _encode_pcg64(state: Dict[str, Any], out: np.ndarray) -> None:
    """Pack a ``Generator.bit_generator.state`` dict into 6 uint64."""
    if state.get("bit_generator") != "PCG64":
        raise ValueError(
            "the client-state store holds PCG64 counter state; got "
            f"bit generator {state.get('bit_generator')!r} (build clients "
            "with numpy's default_rng)"
        )
    inner = state["state"]
    s, inc = int(inner["state"]), int(inner["inc"])
    out[0] = (s >> 64) & _U64
    out[1] = s & _U64
    out[2] = (inc >> 64) & _U64
    out[3] = inc & _U64
    out[4] = int(state["has_uint32"]) & _U64
    out[5] = int(state["uinteger"]) & _U64


def _decode_pcg64(row: np.ndarray) -> Dict[str, Any]:
    """Invert :func:`_encode_pcg64` back to a state dict."""
    return {
        "bit_generator": "PCG64",
        "state": {
            "state": (int(row[0]) << 64) | int(row[1]),
            "inc": (int(row[2]) << 64) | int(row[3]),
        },
        "has_uint32": int(row[4]),
        "uinteger": int(row[5]),
    }


class DataPartition:
    """Maps a client index to its training shard of a shared dataset."""

    #: Manifest tag checked on checkpoint restore.
    kind = "base"

    def __len__(self) -> int:
        raise NotImplementedError

    def n_samples(self, index: int) -> int:
        """Shard size of client ``index`` without materializing data."""
        raise NotImplementedError

    def materialize(self, index: int) -> Dataset:
        """The client's dataset, built lazily (views where possible)."""
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """JSON-safe shape summary for the checkpoint manifest."""
        return {"kind": self.kind, "n_clients": len(self)}


class ExplicitPartition(DataPartition):
    """Prebuilt per-client datasets (the ``from_clients`` parity path).

    Holds object references, so it is O(population) like the eager
    client list it came from — use :class:`CyclicPartition` or
    :class:`IndexedPartition` for large populations.
    """

    kind = "explicit"

    def __init__(self, datasets: Sequence[Dataset]) -> None:
        if not datasets:
            raise ValueError("need at least one dataset")
        self._datasets = list(datasets)

    def __len__(self) -> int:
        return len(self._datasets)

    def n_samples(self, index: int) -> int:
        return len(self._datasets[index])

    def materialize(self, index: int) -> Dataset:
        return self._datasets[index]


class IndexedPartition(DataPartition):
    """Explicit index lists compacted into one contiguous array.

    Accepts the output of any :mod:`repro.data.partition` function
    (label shards, Dirichlet, IID, groups) and stores it as a single
    int64 index array plus per-client offsets — two contiguous arrays
    instead of P Python lists.  ``materialize`` gathers the client's
    rows (a copy, for the active cohort only).
    """

    kind = "indexed"

    def __init__(self, dataset: Dataset, parts: Sequence[np.ndarray]) -> None:
        if not parts:
            raise ValueError("need at least one partition entry")
        self.dataset = dataset
        lengths = np.asarray([len(p) for p in parts], dtype=np.int64)
        if np.any(lengths == 0):
            raise ValueError("every client needs at least one sample")
        self._offsets = np.zeros(len(parts) + 1, dtype=np.int64)
        np.cumsum(lengths, out=self._offsets[1:])
        self._indices = np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in parts]
        )

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def n_samples(self, index: int) -> int:
        return int(self._offsets[index + 1] - self._offsets[index])

    def materialize(self, index: int) -> Dataset:
        idx = self._indices[self._offsets[index] : self._offsets[index + 1]]
        return Dataset(self.dataset.x[idx], self.dataset.y[idx])


class CyclicPartition(DataPartition):
    """O(1)-state partition: wrap-around slices of a shared dataset.

    Client ``i`` owns the ``samples_per_client`` rows starting at
    ``(i * stride) % n`` — population size is decoupled from dataset
    size, which is what a million-client emulation over a fixed corpus
    needs.  Non-wrapping clients get zero-copy views of the base
    arrays; only the few wrap-around clients pay a concatenation.
    """

    kind = "cyclic"

    def __init__(
        self,
        dataset: Dataset,
        n_clients: int,
        samples_per_client: int,
        stride: Optional[int] = None,
    ) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if not 1 <= samples_per_client <= len(dataset):
            raise ValueError(
                f"samples_per_client must be in [1, {len(dataset)}], "
                f"got {samples_per_client}"
            )
        self.dataset = dataset
        self.n_clients = n_clients
        self.samples_per_client = samples_per_client
        self.stride = samples_per_client if stride is None else stride
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    def __len__(self) -> int:
        return self.n_clients

    def n_samples(self, index: int) -> int:
        del index
        return self.samples_per_client

    def materialize(self, index: int) -> Dataset:
        n = len(self.dataset)
        start = (index * self.stride) % n
        end = start + self.samples_per_client
        if end <= n:
            return Dataset(self.dataset.x[start:end], self.dataset.y[start:end])
        wrap = end - n
        return Dataset(
            np.concatenate([self.dataset.x[start:], self.dataset.x[:wrap]]),
            np.concatenate([self.dataset.y[start:], self.dataset.y[:wrap]]),
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n_clients": self.n_clients,
            "samples_per_client": self.samples_per_client,
            "stride": self.stride,
        }


class StoreClient(FLClient):
    """A lazily materialized view of one store row.

    A real :class:`~repro.fl.client.FLClient` — every executor backend
    (serial/thread/batched) runs it unchanged; its dataset aliases the
    partition's shared arrays and its RNG stream was restored from (or
    freshly derived for) its shard row.  Views live for one round:
    the store's :meth:`~ClientStateStore.writeback` captures the
    advanced stream back into the shard and retires the view.
    """

    def __init__(
        self,
        client_id: int,
        train_data: Dataset,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(client_id, train_data, rng=rng)
        self._retired = False  # ckpt: transient — views never outlive their round

    def compute_update(self, *args, **kwargs):
        if self._retired:
            raise RuntimeError(
                f"store view for client {self.client_id} was already "
                "written back; check out a fresh cohort"
            )
        return super().compute_update(*args, **kwargs)

    def __repr__(self) -> str:
        return f"StoreClient(id={self.client_id}, n={self.n_samples})"


class _Shard:
    """One shard's arrays; allocated only when a row is first touched."""

    __slots__ = ("rng", "live", "stats", "feedback")

    def __init__(self, rows: int) -> None:
        self.rng = np.zeros((rows, 6), dtype=np.uint64)
        self.live = np.zeros(rows, dtype=bool)
        self.stats = np.zeros((rows, 3), dtype=np.int64)
        self.feedback: Optional[np.ndarray] = None


#: stats columns, by index.
_PARTICIPATIONS, _UPLOADS, _LAST_ROUND = 0, 1, 2


class ClientStateStore:
    """Sharded array-backed per-client state for huge populations.

    ``population`` rows of client state (RNG counters, participation
    stats, packed feedback signs) in lazily allocated fixed-size
    shards; ``partition`` maps rows to data.  Peak memory is
    O(touched shards + dataset), never O(population x object): a
    100-client cohort from a million-client pool materializes a
    handful of shards and exactly 100 Python objects.

    ``track_feedback=True`` additionally records, for every
    participant, the packed sign bit-planes of the feedback vector it
    trained against (``n_params`` then names the model size; see
    :func:`repro.core.feedback.pack_signs`).
    """

    def __init__(
        self,
        population: int,
        partition: DataPartition,
        seed: int = 0,
        shard_size: int = DEFAULT_SHARD_SIZE,
        track_feedback: bool = False,
        n_params: Optional[int] = None,
    ) -> None:
        if population < 1:
            raise ValueError("population must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if len(partition) < population:
            raise ValueError(
                f"partition covers {len(partition)} clients, population "
                f"is {population}"
            )
        if track_feedback and (n_params is None or n_params < 1):
            raise ValueError("track_feedback=True requires n_params >= 1")
        self.population = population
        self.partition = partition  # ckpt: transient — re-supplied at build, like datasets
        self.seed = seed
        self.shard_size = shard_size
        self.track_feedback = track_feedback
        self.n_params = n_params
        self._shards: Dict[int, _Shard] = {}
        self._outstanding: Dict[int, StoreClient] = {}  # ckpt: transient — live round views
        self.metrics = None  # ckpt: transient — live registry binding

    # -- construction --------------------------------------------------

    @classmethod
    def from_clients(
        cls,
        clients: Sequence[FLClient],
        shard_size: int = DEFAULT_SHARD_SIZE,
        track_feedback: bool = False,
        n_params: Optional[int] = None,
    ) -> "ClientStateStore":
        """Adopt an eager client list: same ids, same streams, same data.

        The resulting store is bitwise-interchangeable with the list it
        came from — every view checked out later resumes the exact RNG
        stream the eager object held, so run histories digest-match.
        Client ids must be the dense range ``0..len-1`` (the store's
        row index *is* the client id).
        """
        for position, client in enumerate(clients):
            if client.client_id != position:
                raise ValueError(
                    "store rows are indexed by client id; expected client "
                    f"{position} at position {position}, got "
                    f"{client.client_id}"
                )
        store = cls(
            len(clients),
            ExplicitPartition([c.train_data for c in clients]),
            shard_size=shard_size,
            track_feedback=track_feedback,
            n_params=n_params,
        )
        for client in clients:
            shard, offset = store._locate(client.client_id)
            _encode_pcg64(client.rng_state(), shard.rng[offset])
            shard.live[offset] = True
        return store

    # -- internals -----------------------------------------------------

    def _shard_rows(self, shard_id: int) -> int:
        start = shard_id * self.shard_size
        return min(self.shard_size, self.population - start)

    def _locate(self, index: int):
        """(shard, row offset) for a client index, materializing lazily."""
        shard_id, offset = divmod(index, self.shard_size)
        shard = self._shards.get(shard_id)
        if shard is None:
            shard = _Shard(self._shard_rows(shard_id))
            self._shards[shard_id] = shard
            if self.metrics is not None:
                self.metrics.counter("store.shards_materialized").inc()
        return shard, offset

    def _fresh_stream(self, index: int) -> np.random.Generator:
        """The deterministic stream of a never-touched client.

        A pure function of ``(seed, index)``: participation order and
        shard touch order cannot change any client's draws.
        """
        return np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(entropy=(self.seed, index)))
        )

    # -- the round-trip: checkout, writeback ---------------------------

    def checkout(self, indices: Sequence[int]) -> List[StoreClient]:
        """Materialize live views for this round's cohort.

        Views come back in the order of ``indices``.  Every view must
        be returned through :meth:`writeback` before the next checkout
        of the same client or a state snapshot.
        """
        views: List[StoreClient] = []
        for raw in indices:
            index = int(raw)
            if not 0 <= index < self.population:
                raise IndexError(
                    f"client index {index} outside population "
                    f"[0, {self.population})"
                )
            if index in self._outstanding:
                raise RuntimeError(
                    f"client {index} is already checked out; writeback "
                    "the previous cohort first"
                )
            shard, offset = self._locate(index)
            if shard.live[offset]:
                rng = np.random.Generator(np.random.PCG64())
                rng.bit_generator.state = _decode_pcg64(shard.rng[offset])
            else:
                rng = self._fresh_stream(index)
            view = StoreClient(index, self.partition.materialize(index), rng)
            self._outstanding[index] = view
            views.append(view)
        if self.metrics is not None:
            self.metrics.counter("store.checkouts").inc(len(views))
        return views

    def writeback(self, views: Sequence[StoreClient]) -> None:
        """Capture advanced RNG streams into shard rows; retire the views."""
        for view in views:
            index = view.client_id
            if self._outstanding.get(index) is not view:
                raise RuntimeError(
                    f"client {index} is not checked out from this store"
                )
            shard, offset = self._locate(index)
            _encode_pcg64(view.rng_state(), shard.rng[offset])
            shard.live[offset] = True
            view._retired = True
            del self._outstanding[index]
        if self.metrics is not None and views:
            self.metrics.counter("store.rows_written").inc(len(views))

    def record_round(
        self,
        iteration: int,
        uploaded_ids: Sequence[int],
        skipped_ids: Sequence[int],
        feedback_sign: Optional[np.ndarray] = None,
    ) -> None:
        """Account one round's participation into the stats columns.

        With feedback tracking on, every participant's row also
        records the packed signs of ``feedback_sign`` — the broadcast
        u_bar it judged its update against.
        """
        packed = None
        if self.track_feedback and feedback_sign is not None:
            packed = pack_signs(feedback_sign)
            if packed.size != packed_sign_nbytes(self.n_params):
                raise ValueError(
                    f"feedback sign vector is not {self.n_params} "
                    "parameters wide"
                )
        for ids, uploaded in ((uploaded_ids, True), (skipped_ids, False)):
            for raw in ids:
                index = int(raw)
                shard, offset = self._locate(index)
                shard.stats[offset, _PARTICIPATIONS] += 1
                if uploaded:
                    shard.stats[offset, _UPLOADS] += 1
                shard.stats[offset, _LAST_ROUND] = iteration
                if packed is not None:
                    if shard.feedback is None:
                        shard.feedback = np.zeros(
                            (len(shard.live), packed.size), dtype=np.uint8
                        )
                    shard.feedback[offset] = packed

    # -- inspection ----------------------------------------------------

    @property
    def materialized_shards(self) -> int:
        return len(self._shards)

    @property
    def nbytes(self) -> int:
        """Bytes held in shard arrays (the population-model footprint)."""
        total = 0
        for shard in self._shards.values():
            total += shard.rng.nbytes + shard.live.nbytes + shard.stats.nbytes
            if shard.feedback is not None:
                total += shard.feedback.nbytes
        return total

    def participation_stats(self, index: int) -> Dict[str, int]:
        """(participations, uploads, last round) of one client."""
        shard_id, offset = divmod(int(index), self.shard_size)
        shard = self._shards.get(shard_id)
        if shard is None:
            return {"participations": 0, "uploads": 0, "last_round": 0}
        row = shard.stats[offset]
        return {
            "participations": int(row[_PARTICIPATIONS]),
            "uploads": int(row[_UPLOADS]),
            "last_round": int(row[_LAST_ROUND]),
        }

    def feedback_signs(self, index: int) -> Optional[np.ndarray]:
        """Unpacked {-1,0,+1} feedback signs last seen by one client."""
        if not self.track_feedback:
            raise ValueError("store was built with track_feedback=False")
        shard_id, offset = divmod(int(index), self.shard_size)
        shard = self._shards.get(shard_id)
        if shard is None or shard.feedback is None:
            return None
        return unpack_signs(shard.feedback[offset], self.n_params)

    # -- checkpoint plumbing (see repro.ckpt.state) --------------------

    def manifest(self) -> Dict[str, Any]:
        """JSON-safe identity + shape summary for the ckpt manifest."""
        if self._outstanding:
            raise RuntimeError(
                f"{len(self._outstanding)} views are checked out; the "
                "store only snapshots at round boundaries"
            )
        return {
            "population": self.population,
            "shard_size": self.shard_size,
            "seed": self.seed,
            "track_feedback": self.track_feedback,
            "n_params": self.n_params,
            "shards": sorted(self._shards),
            "feedback_shards": sorted(
                s for s, shard in self._shards.items()
                if shard.feedback is not None
            ),
            "partition": self.partition.describe(),
        }

    def state_arrays(self) -> Dict[str, np.ndarray]:
        """Materialized shard arrays, keyed ``shard/<id>/<field>``."""
        if self._outstanding:
            raise RuntimeError(
                f"{len(self._outstanding)} views are checked out; the "
                "store only snapshots at round boundaries"
            )
        arrays: Dict[str, np.ndarray] = {}
        for shard_id in sorted(self._shards):
            shard = self._shards[shard_id]
            arrays[f"shard/{shard_id}/rng"] = shard.rng
            arrays[f"shard/{shard_id}/live"] = shard.live
            arrays[f"shard/{shard_id}/stats"] = shard.stats
            if shard.feedback is not None:
                arrays[f"shard/{shard_id}/feedback"] = shard.feedback
        return arrays

    def load_state(
        self, manifest: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> None:
        """Restore a :meth:`manifest` + :meth:`state_arrays` snapshot."""
        for field in ("population", "shard_size", "seed", "track_feedback"):
            if manifest[field] != getattr(self, field):
                raise ValueError(
                    f"store snapshot has {field}={manifest[field]!r}, "
                    f"this store has {getattr(self, field)!r}"
                )
        if manifest["partition"] != self.partition.describe():
            raise ValueError(
                f"store snapshot partition {manifest['partition']!r} does "
                f"not match {self.partition.describe()!r}"
            )
        self._shards = {}
        feedback_shards = set(manifest.get("feedback_shards", ()))
        for shard_id in manifest["shards"]:
            shard_id = int(shard_id)
            rows = self._shard_rows(shard_id)
            shard = _Shard(rows)
            rng = np.asarray(arrays[f"shard/{shard_id}/rng"], dtype=np.uint64)
            live = np.asarray(arrays[f"shard/{shard_id}/live"], dtype=bool)
            stats = np.asarray(
                arrays[f"shard/{shard_id}/stats"], dtype=np.int64
            )
            if rng.shape != (rows, 6) or live.shape != (rows,) or (
                stats.shape != (rows, 3)
            ):
                raise ValueError(
                    f"shard {shard_id} arrays have the wrong shape for "
                    f"{rows} rows"
                )
            shard.rng[...] = rng
            shard.live[...] = live
            shard.stats[...] = stats
            if shard_id in feedback_shards:
                shard.feedback = np.asarray(
                    arrays[f"shard/{shard_id}/feedback"], dtype=np.uint8
                ).copy()
            self._shards[shard_id] = shard

    def __repr__(self) -> str:
        return (
            f"ClientStateStore(population={self.population}, "
            f"shard_size={self.shard_size}, "
            f"materialized={self.materialized_shards})"
        )
