"""The synchronous federated training loop (paper Algorithm 1).

Each iteration: broadcast (x_{t-1}, u_bar_{t-1}); every client trains
locally and judges its update with the configured upload policy; the
server averages the uploaded updates into the new global model.  All
communication and measurement bookkeeping is recorded per round.

The round is split into a *compute* half — fanned out through a
pluggable :mod:`repro.fl.executor` backend (serial, thread or process)
— and a *decide/aggregate* half that always runs here, in participant
order, so run histories are bitwise-identical across backends.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.policy import PolicyContext, UploadPolicy
from repro.core.relevance import relevance_per_segment
from repro.fl.accounting import CommunicationLedger
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.config import ConfigError, FLConfig
from repro.fl.executor import (
    ClientExecutor,
    RoundPlan,
    WorkspaceSpec,
    make_executor,
)
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.sampling import ClientSampler, FullParticipation
from repro.fl.server import FLServer
from repro.fl.store import ClientStateStore
from repro.fl.workspace import ModelWorkspace
from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes
from repro.obs import (
    HealthMonitor,
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    RoundRollup,
    SpanSampler,
    Tracer,
)

__all__ = ["FederatedTrainer", "RoundState"]

#: Optional evaluation callback: (workspace with global params loaded) ->
#: (test_loss, test_metric).
EvalFn = Callable[[ModelWorkspace], Tuple[float, float]]


def _ensure_finite(vector: np.ndarray, what: str) -> None:
    """Raise if ``vector`` carries NaN/Inf (the FLConfig.check_finite guard)."""
    bad = np.count_nonzero(~np.isfinite(vector))
    if bad:
        raise FloatingPointError(
            f"{what} contains {bad} non-finite value(s) out of "
            f"{vector.size}; a diverging client or an unstable learning "
            "rate is poisoning the federation"
        )


@dataclass
class RoundState:
    """One round's compute half, handed to the decide/aggregate half.

    The synchronous loop builds and consumes one per round back to
    back; the async engine (:mod:`repro.fl.events`) holds several in
    flight while their virtual-latency arrivals trickle in.  ``views``
    is the full checked-out cohort (what a store writeback must retire)
    while ``participants``/``results`` may be narrowed to the clients
    whose uploads actually arrived (churn drops never reach the decide
    half); under the synchronous trainer the two are always identical.
    """

    iteration: int
    lr: float
    feedback: np.ndarray
    global_params: np.ndarray
    participants: List[FLClient]
    results: List[ClientUpdate]
    views: List[FLClient] = field(default_factory=list)
    rollup: Optional[RoundRollup] = None


class FederatedTrainer:
    """Drives one policy over one federation of clients.

    ``clients`` is either an eager sequence of :class:`FLClient`
    objects (the small-federation setting) or a
    :class:`~repro.fl.store.ClientStateStore` (the population model:
    the sampler draws indices, the store materializes views for just
    the active cohort, and advanced RNG streams are written back to
    the shard arrays at the end of each round).  Both paths run the
    same round loop and produce bitwise-identical histories for the
    same streams and data.
    """

    def __init__(
        self,
        workspace: ModelWorkspace,
        clients: Union[Sequence[FLClient], ClientStateStore],
        policy: UploadPolicy,
        config: FLConfig,
        eval_fn: Optional[EvalFn] = None,
        feedback_staleness: int = 1,
        sampler: Optional[ClientSampler] = None,
        executor: Union[None, str, ClientExecutor] = None,
        workspace_spec: Optional[WorkspaceSpec] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if isinstance(clients, ClientStateStore):
            self.store = clients
            # No eager pool: views exist only while a round is running.
            self.clients = []
        else:
            if not clients:
                raise ValueError("need at least one client")
            ids = [c.client_id for c in clients]
            if len(set(ids)) != len(ids):
                raise ValueError("client ids must be unique")
            self.store = None
            self.clients = list(clients)
        self.workspace = workspace
        self.policy = policy
        self.config = config  # ckpt: transient — caller-supplied, re-passed on restore
        self.eval_fn = eval_fn  # ckpt: transient — caller-supplied callable
        self.sampler = sampler or FullParticipation()
        self.server = FLServer(
            workspace.get_flat(),
            weighted=config.weighted_aggregation,
            feedback_staleness=feedback_staleness,
        )
        # Observability: an explicit tracer wins; otherwise the config
        # knobs build one (JSONL file if trace_path, else in-memory).
        # The trainer closes only tracers it built itself.
        self._owns_tracer = False  # ckpt: transient — rebuilt with the tracer itself
        if tracer is not None:
            self.tracer = tracer
        elif config.trace_enabled:
            sink = (
                JsonlSink(config.trace_path)
                if config.trace_path
                else MemorySink()
            )
            self.tracer = Tracer(sinks=[sink])
            self._owns_tracer = True
        else:
            self.tracer = NULL_TRACER
        # Per-client span head-sampling (a pure (seed, round, client)
        # hash); the keep-everything rate skips the sampler entirely so
        # pre-sampling traces stay bit-identical.
        if self.tracer.enabled and config.trace_sample < 1.0:
            self.tracer.sampler = SpanSampler(config.seed, config.trace_sample)
        self.ledger = CommunicationLedger(
            n_params=self.server.n_params, metrics=self.tracer.metrics
        )
        # Online anomaly checks over the per-round rollups; its small
        # stall cursor rides in checkpoints (manifest["health"]).
        self.health: Optional[HealthMonitor] = (
            HealthMonitor() if self.tracer.enabled else None
        )
        # Cumulative per-layer end offsets into the flat parameter
        # vector, for the rollup's per-layer sign-agreement summary.
        self._layer_boundaries = list(  # ckpt: transient — derived from the model shape
            np.cumsum([p.size for p in workspace.model.parameters()])
        )
        self.history = RunHistory(policy_name=policy.name)
        # Client-execution engine: ``executor`` overrides the config's
        # backend name; a ready-made ClientExecutor is used as-is.
        self.executor = make_executor(
            config.executor if executor is None else executor,
            n_workers=config.executor_workers,
        )
        if self.store is not None:
            if self.executor.name == "process":
                raise ConfigError(
                    "the process backend pins client objects into worker "
                    "processes at bind time; store-backed views are "
                    "materialized per round — use the serial, thread or "
                    "batched backend with a ClientStateStore",
                    constraint="store-process-backend",
                    supported=("serial", "thread", "batched"),
                )
            self.store.metrics = self.tracer.metrics
        self.executor.bind(
            workspace, self.clients, spec=workspace_spec, tracer=self.tracer
        )
        # Run-state persistence (see repro.ckpt), driven by the
        # checkpoint_* config knobs.  Imported lazily: repro.ckpt
        # imports fl modules, so a module-level import would cycle.
        self.checkpointer = None  # ckpt: transient — the persistence driver, not run state
        if config.checkpoint_enabled:
            from repro.ckpt import Checkpointer

            self.checkpointer = Checkpointer(
                config.checkpoint_dir,
                every_n_rounds=config.checkpoint_every,
                keep=config.checkpoint_keep,
            )
        # Open "run" span adopted from a checkpoint by restore();
        # run() continues it instead of opening a fresh one.
        self._resume_span = None  # ckpt: transient — live span handle, re-adopted by restore()
        # Hook for measurement experiments: called with every
        # (client update, decision) pair before aggregation.
        self.on_decision: Optional[Callable] = None  # ckpt: transient — in-process hook
        # Back-reference installed by an AsyncFederatedTrainer wrapping
        # this trainer; checkpoints capture the engine's state through
        # it (see repro.ckpt.state).
        self.async_engine = None  # ckpt: transient — re-registered by the engine constructor

    def run_round(self, t: int) -> RoundRecord:
        """Execute one synchronous iteration (1-based index ``t``)."""
        with self.tracer.span("round", iteration=t) as round_span:
            try:
                state = self._begin_round(t, round_span)
                return self._finish_round(state, round_span)
            finally:
                # The rollup accumulator never outlives its round, even
                # when the round dies mid-flight.
                if self.tracer.enabled:
                    self.tracer.rollup = None

    def _begin_round(self, t: int, round_span) -> RoundState:
        """The compute half: select a cohort and fan it out.

        Returns the :class:`RoundState` the decide/aggregate half
        (:meth:`_finish_round`) consumes.  The synchronous loop calls
        the two back to back under one ``round`` span; the async engine
        calls them from its dispatch and close handlers with (possibly)
        other rounds in between.  ``round_span`` may be None (the
        engine's bounded-staleness mode has no enclosing round span).
        """
        lr = self.config.lr(t)
        feedback = self.server.feedback
        global_params = self.server.global_params.copy()

        if self.store is not None:
            indices = self.sampler.select_indices(t, self.store.population)
            participants = self.store.checkout(indices)
        else:
            participants = self.sampler.select(t, self.clients)
        if not participants:
            raise RuntimeError(f"sampler selected no clients in round {t}")
        if round_span is not None:
            round_span.set_attr("n_participants", len(participants))

        # Compute half: fan the participants out through the executor.
        # Results come back aligned with the participant order whatever
        # the backend's completion order was.  The executor itself emits
        # the broadcast + per-client client_compute spans.
        plan = RoundPlan(
            iteration=t,
            lr=lr,
            local_epochs=self.config.local_epochs,
            batch_size=self.config.batch_size,
            global_params=global_params,
        )
        # One rollup per round: executors feed wall-clock task timings
        # for every participant (sampled or not), the decide loop in
        # _finish_round feeds the deterministic decision stream.
        rollup: Optional[RoundRollup] = None
        if self.tracer.enabled:
            rollup = RoundRollup(t)
            self.tracer.rollup = rollup
        results = self.executor.run_round(plan, participants)
        return RoundState(
            iteration=t,
            lr=lr,
            feedback=feedback,
            global_params=global_params,
            participants=list(participants),
            results=list(results),
            views=list(participants),
            rollup=rollup,
        )

    def _finish_round(
        self,
        state: RoundState,
        round_span=None,
        *,
        staleness: int = 0,
        virtual_time: float = 0.0,
        merge_scale: float = 1.0,
        store_writeback: bool = True,
    ) -> RoundRecord:
        """The decide/aggregate half: a strictly ordered reduction.

        ``staleness``/``virtual_time`` flow into the round record (and
        the policy context); ``merge_scale`` is the staleness weight the
        aggregate is scaled by before it moves the model (1.0 takes the
        exact unscaled path, so synchronous arithmetic is untouched);
        ``store_writeback=False`` is for the async engine, which retires
        store views at dispatch time instead (a later round may check
        the same client out again while this one is still in flight).
        """
        t = state.iteration
        lr = state.lr
        feedback = state.feedback
        global_params = state.global_params
        participants = state.participants
        results = state.results
        rollup = state.rollup

        # One context per round; per-client views share its cache, so
        # CMFL computes np.sign(u_bar) once per round, not once per
        # client.
        round_ctx = PolicyContext(
            iteration=t,
            global_params=global_params,
            global_update_estimate=feedback,
            staleness=staleness,
        )
        uploads: List[ClientUpdate] = []
        skipped: List[ClientUpdate] = []
        scores: List[float] = []
        losses: List[float] = []
        threshold = 0.0
        with self.tracer.span("decide", iteration=t):
            for client, result in zip(participants, results):
                with self.tracer.sampled_span(
                    "relevance_check",
                    t,
                    client.client_id,
                    iteration=t,
                    client_id=client.client_id,
                ) as check_span:
                    if self.config.check_finite:
                        _ensure_finite(
                            result.update,
                            f"update from client {client.client_id} "
                            f"in round {t}",
                        )
                    decision = self.policy.decide(
                        result.update, round_ctx.for_client(client.client_id)
                    )
                    check_span.set_attr("upload", bool(decision.upload))
                    check_span.set_attr("score", float(decision.score))
                if self.on_decision is not None:
                    self.on_decision(result, decision)
                scores.append(decision.score)
                losses.append(result.train_loss)
                if rollup is not None:
                    rollup.observe_decision(
                        float(decision.score),
                        float(result.train_loss),
                        bool(decision.upload),
                    )
                threshold = decision.threshold
                if decision.upload:
                    uploads.append(result)
                else:
                    skipped.append(result)

            if not uploads and self.config.on_empty_round == "force_best":
                best = int(np.argmax(scores))
                forced = next(
                    u for u in skipped
                    if u.client_id == participants[best].client_id
                )
                skipped.remove(forced)
                uploads.append(forced)
                self.tracer.event(
                    "force_best",
                    attrs={"iteration": t, "client_id": forced.client_id},
                )
                if rollup is not None:
                    rollup.n_uploaded += 1
                    rollup.n_forced += 1
        if round_span is not None:
            round_span.set_attr("n_uploaded", len(uploads))

        with self.tracer.span("aggregate", iteration=t, n_uploads=len(uploads)):
            aggregate = self.server.apply_round(uploads, scale=merge_scale)
            if self.config.check_finite and aggregate is not None:
                _ensure_finite(aggregate, f"aggregated delta of round {t}")
            self.ledger.record_round(
                [u.client_id for u in uploads],
                [s.client_id for s in skipped],
                staleness=staleness,
            )

        if rollup is not None:
            # Mirror the ledger's per-round byte arithmetic exactly, so
            # the health monitor's drift check is meaningful.
            rollup.uploaded_bytes = len(uploads) * update_nbytes(
                self.server.n_params
            )
            rollup.status_bytes = len(skipped) * STATUS_MESSAGE_BYTES
            if aggregate is not None and feedback is not None:
                rollup.layer_sign_agreement = [
                    float(v)
                    for v in relevance_per_segment(
                        aggregate, feedback, self._layer_boundaries
                    )
                ]

        if self.store is not None:
            # Account participation into the shard stats and capture
            # every view's advanced RNG stream back into its row; after
            # this the round's views are retired and the store is
            # consistent (checkpointable) again.  (The async engine
            # retires views at dispatch instead — store_writeback=False
            # — so only the stats are recorded here.)
            self.store.record_round(
                t,
                [u.client_id for u in uploads],
                [s.client_id for s in skipped],
                feedback_sign=(
                    feedback if self.store.track_feedback else None
                ),
            )
            if store_writeback:
                self.store.writeback(state.views)
            if rollup is not None:
                rollup.extra["store"] = {"population": self.store.population}

        record = RoundRecord(
            iteration=t,
            n_clients=len(participants),
            n_uploaded=len(uploads),
            accumulated_rounds=self.ledger.accumulated_rounds,
            total_bytes=self.ledger.total_bytes,
            lr=lr,
            mean_train_loss=float(np.mean(losses)),
            mean_score=float(np.mean(scores)),
            threshold=threshold,
            uploaded_ids=[u.client_id for u in uploads],
            staleness=staleness,
            virtual_time=virtual_time,
        )
        if self.eval_fn is not None and t % self.config.eval_every == 0:
            with self.tracer.span("evaluate", iteration=t) as eval_span:
                self.workspace.load_flat(self.server.global_params)
                record.test_loss, record.test_metric = self.eval_fn(
                    self.workspace
                )
                eval_span.set_attr("test_loss", record.test_loss)
                eval_span.set_attr("test_metric", record.test_metric)
        if rollup is not None:
            rollup_attrs = rollup.attrs()
            rollup_rt = rollup.rt()
            self.tracer.event("round_rollup", attrs=rollup_attrs, rt=rollup_rt)
            self.tracer.rollup = None
            if self.health is not None:
                metrics = self.tracer.metrics
                counter_bytes = None
                if "comm.uploaded_bytes" in metrics:
                    counter_bytes = (
                        metrics.counter("comm.uploaded_bytes").value
                        + metrics.counter("comm.status_bytes").value
                    )
                for name, attrs, rt in self.health.observe_round(
                    rollup_attrs,
                    rollup_rt,
                    test_metric=record.test_metric,
                    test_loss=record.test_loss,
                    mean_train_loss=record.mean_train_loss,
                    ledger_total_bytes=self.ledger.total_bytes,
                    counter_total_bytes=counter_bytes,
                ):
                    self.tracer.event(name, attrs=attrs, rt=rt)
        self.history.append(record)
        return record

    def run(self, rounds: Optional[int] = None) -> RunHistory:
        """Run ``rounds`` iterations (default: the configured count).

        With checkpointing configured, a checkpoint is saved after each
        round the schedule selects.  A trainer built by :meth:`restore`
        continues the checkpointed trace's still-open ``run`` span
        instead of opening a new one, so the resumed event stream is
        indistinguishable from an uninterrupted run's.
        """
        total = self.config.rounds if rounds is None else rounds
        if total < 1:
            raise ValueError("rounds must be >= 1")
        start = len(self.history) + 1
        run_span = self._resume_span
        self._resume_span = None
        if run_span is None:
            run_span = self.tracer.span(
                "run",
                policy=self.policy.name,
                rounds=total,
                start_iteration=start,
            )
            run_span.__enter__()
        run_span.set_rt("backend", self.executor.name)
        run_span.set_rt("workers", getattr(self.executor, "n_workers", 1))
        try:
            for t in range(start, start + total):
                self.run_round(t)
                if self.checkpointer is not None:
                    self.checkpointer.maybe_save(self, t)
        finally:
            run_span.__exit__(*sys.exc_info())
        return self.history

    def save_checkpoint(self, path: Union[str, Path]) -> Path:
        """Checkpoint the current run state to ``path`` (see repro.ckpt).

        Valid at round boundaries only — between :meth:`run_round`
        calls, or after :meth:`run` returns.
        """
        from repro.ckpt import save_checkpoint

        return save_checkpoint(self, path)

    @classmethod
    def restore(
        cls,
        path: Union[str, Path],
        workspace: ModelWorkspace,
        clients: Union[Sequence[FLClient], ClientStateStore],
        policy: UploadPolicy,
        config: FLConfig,
        eval_fn: Optional[EvalFn] = None,
        feedback_staleness: int = 1,
        sampler: Optional[ClientSampler] = None,
        executor: Union[None, str, ClientExecutor] = None,
        workspace_spec: Optional[WorkspaceSpec] = None,
    ) -> "FederatedTrainer":
        """Rebuild a trainer from a checkpoint and the federation parts.

        The caller reconstructs the same federation the checkpointed
        run used (model, clients — or a ClientStateStore of the same
        shape — policy, config, sampler: cheap, deterministic object
        construction); the checkpoint then overwrites every piece of
        mutable state, the executor is re-bound to the restored
        workspace, and the trace continuation is wired up.  The returned trainer's next ``run_round`` is
        iteration ``checkpoint.iteration + 1`` and behaves bit-for-bit
        like the uninterrupted run's.
        """
        from repro.ckpt import apply_run_state, build_resume_tracer, read_checkpoint

        ckpt = read_checkpoint(path)
        tracer = build_resume_tracer(ckpt.manifest.get("trace"), config)
        trainer = cls(
            workspace,
            clients,
            policy,
            config,
            eval_fn=eval_fn,
            feedback_staleness=feedback_staleness,
            sampler=sampler,
            executor=executor,
            workspace_spec=workspace_spec,
            tracer=tracer,
        )
        if tracer is not None:
            # restore() built this tracer from the config knobs, same
            # as __init__ would have; close() owns it.
            trainer._owns_tracer = True
        apply_run_state(trainer, ckpt)
        # The executor snapshotted the workspace at bind time; re-bind
        # so replicas/workers start from the restored parameters.
        trainer.executor.bind(
            workspace,
            trainer.clients,
            spec=workspace_spec,
            tracer=trainer.tracer,
        )
        if trainer.tracer.enabled:
            trainer._resume_span = trainer.tracer.current_span()
        return trainer

    def close(self) -> None:
        """Release executor resources (worker pools, shared memory).

        A no-op for the serial backend; idempotent everywhere — except
        that a tracer the trainer built from the config knobs is closed
        too (final metrics snapshot + sink flush), so a traced trainer
        should not run further rounds after ``close``.  The executor
        itself remains usable — thread/process backends lazily restart
        their pools on the next round.
        """
        self.executor.close()
        if self._owns_tracer:
            self.tracer.close()

    def __enter__(self) -> "FederatedTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
