"""Stacked-client compute engine behind the ``batched`` executor backend.

A federated round's compute half is embarrassingly parallel across
clients, but running it one client at a time spends most of each step
in numpy dispatch on small operands.  :class:`BatchedWorkspace` stacks
C same-schedule clients into one leading client axis — stacked flat
parameters ``(C, n_params)``, one ``(C, batch, ...)`` minibatch tensor
per step — so a cohort's round runs as a handful of large kernels
(stacked GEMMs, batched im2col/einsum) instead of ``C`` small ones.

Determinism contract (what keeps history digests bitwise-identical to
the serial backend):

* every reduction stays **per client** — losses are ``(C,)`` vectors,
  gradient sums reduce over batch/spatial axes only, and nothing is
  summed across the client axis before each client's flat update has
  been extracted from its own row;
* every stacked kernel is chosen so each per-client slice sees the
  serial operand shapes and strides, making numpy perform the same
  per-element floating-point operation sequence (see
  :mod:`repro.nn.module` for the layer-level contract);
* per-client minibatch order is driven by each client's own RNG stream
  (:meth:`repro.fl.client.FLClient.epoch_order`), drawn exactly as
  ``Dataset.batches`` would draw it serially.

Anything without a batched path — an exotic layer, a custom loss, a
stateful optimizer — raises
:class:`~repro.nn.module.BatchedUnsupported` at construction, which the
executor treats as "use the per-client fallback".

Observability caveat: a cohort's kernel time is attributed *evenly*
across its members when the executor replays ``client_compute`` spans
and feeds the round rollup, so per-client compute quantiles are flat
within a cohort and ``runtime.health.straggler`` findings can only
surface *between* cohorts (or from fallback singletons) on this
backend — real per-client timing variance needs the thread/process
backends.
"""

from __future__ import annotations

import numpy as np

from repro.fl.workspace import ModelWorkspace
from repro.nn.losses import BatchedLoss
from repro.nn.module import BatchedModule, BatchedParamBinder, BatchedUnsupported
from repro.nn.optimizers import SGD

__all__ = ["BatchedWorkspace"]


class BatchedWorkspace:
    """C same-schedule clients as one stack of large numpy ops.

    Built from the trainer's (serial) workspace: the model's batched
    counterpart reads and writes strided views into one
    ``(C, n_params)`` parameter/gradient pair, the loss returns a
    ``(C,)`` per-client vector, and the optimizer step is the fused
    elementwise SGD update applied to the whole stack at once.  Only
    plain :class:`~repro.nn.optimizers.SGD` has that fused form;
    stateful optimizers (Momentum, Adam) raise
    :class:`~repro.nn.module.BatchedUnsupported` so cohorts fall back
    to the per-client path.
    """

    def __init__(self, workspace: ModelWorkspace, n_clients: int) -> None:
        if n_clients < 1:
            raise ValueError("n_clients must be positive")
        optimizer = workspace.optimizer
        if type(optimizer) is not SGD:
            raise BatchedUnsupported(
                f"{type(optimizer).__name__} has no fused stacked step; "
                "only plain SGD runs batched"
            )
        self.n_clients = n_clients
        self.n_params = workspace.n_params
        self._binder = BatchedParamBinder(n_clients, workspace.n_params)
        self._model: BatchedModule = workspace.model.batched(self._binder)
        self._binder.finish()
        self._loss: BatchedLoss = workspace.loss.batched()
        self._weight_decay = optimizer.weight_decay

    @property
    def params(self) -> np.ndarray:
        """The stacked ``(C, n_params)`` parameter matrix (row = client)."""
        return self._binder.data

    def load_global(self, global_params: np.ndarray) -> None:
        """Broadcast x_{t-1} into every client row.

        The broadcast vector itself is treated as read-only, exactly as
        ``compute_update`` treats its ``global_params`` argument.
        """
        flat = np.asarray(global_params, dtype=np.float64).reshape(-1)
        if flat.size != self.n_params:
            raise ValueError(
                f"global vector has {flat.size} values, model has "
                f"{self.n_params}"
            )
        self._binder.data[...] = flat[None, :]

    def train_step_all(
        self, x: np.ndarray, y: np.ndarray, lr: float
    ) -> np.ndarray:
        """One stacked SGD step; returns the ``(C,)`` per-client losses.

        Mirrors ``ModelWorkspace.train_step`` slice by slice: zero the
        gradients, forward, loss, backward, SGD update — with every
        reduction kept inside its client row.  The fused update
        ``params -= lr * grads`` is elementwise, hence bitwise equal to
        the serial per-parameter loop.
        """
        self._binder.grad[...] = 0.0
        out = self._model.forward(x, training=True)
        loss_values = self._loss.forward(out, y)
        self._model.head_backward(self._loss.backward())
        grads = self._binder.grad
        if self._weight_decay:
            grads = grads + self._weight_decay * self._binder.data
        self._binder.data -= lr * grads
        return loss_values

    def extract_updates(self, global_params: np.ndarray) -> np.ndarray:
        """Per-client flat updates ``x_local_final - x_{t-1}``, stacked.

        This is the first point where client results leave the stack —
        and they leave one row at a time; nothing is ever summed across
        the client axis inside the engine.
        """
        updates = self._binder.data.copy()
        flat = np.asarray(global_params, dtype=np.float64).reshape(-1)
        updates -= flat[None, :]
        return updates

    def __repr__(self) -> str:
        return (
            f"BatchedWorkspace(n_clients={self.n_clients}, "
            f"n_params={self.n_params})"
        )
