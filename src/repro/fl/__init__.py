"""The synchronous federated-learning engine.

One :class:`~repro.fl.trainer.FederatedTrainer` drives the paper's
three-step synchronous scheme (Sec. II-A): clients train locally on
private shards, an upload policy filters their updates, and the server
averages whatever arrived into a global update.  Communication-round
and byte accounting happen inline so every experiment reads its metrics
from the run history.
"""

from repro.fl.config import EXECUTOR_BACKENDS, FLConfig
from repro.fl.workspace import ModelWorkspace
from repro.fl.batched import BatchedWorkspace
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.executor import (
    BatchedExecutor,
    ClientExecutionError,
    ClientExecutor,
    ProcessExecutor,
    RoundPlan,
    SerialExecutor,
    ThreadExecutor,
    WorkspaceSpec,
    make_executor,
)
from repro.fl.server import FLServer
from repro.fl.aggregation import mean_aggregate, weighted_mean_aggregate
from repro.fl.accounting import CommunicationLedger
from repro.fl.history import RoundRecord, RunHistory
from repro.fl.sampling import (
    AvailabilitySampler,
    FullParticipation,
    UniformSampler,
    UnreliableParticipation,
)
from repro.fl.privacy import GaussianMechanism, PrivatizedPolicy
from repro.fl.secure import SecureAggregator
from repro.fl.store import (
    ClientStateStore,
    CyclicPartition,
    ExplicitPartition,
    IndexedPartition,
    StoreClient,
)
from repro.fl.trainer import FederatedTrainer

__all__ = [
    "EXECUTOR_BACKENDS",
    "FLConfig",
    "ModelWorkspace",
    "BatchedWorkspace",
    "ClientExecutionError",
    "ClientExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "BatchedExecutor",
    "RoundPlan",
    "WorkspaceSpec",
    "make_executor",
    "FLClient",
    "ClientUpdate",
    "FLServer",
    "mean_aggregate",
    "weighted_mean_aggregate",
    "CommunicationLedger",
    "RoundRecord",
    "RunHistory",
    "AvailabilitySampler",
    "FullParticipation",
    "UniformSampler",
    "UnreliableParticipation",
    "ClientStateStore",
    "StoreClient",
    "CyclicPartition",
    "ExplicitPartition",
    "IndexedPartition",
    "SecureAggregator",
    "GaussianMechanism",
    "PrivatizedPolicy",
    "FederatedTrainer",
]
