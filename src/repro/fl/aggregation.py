"""Server-side aggregation rules.

The paper's Algorithm 1 line 8 is a plain mean over the received
(relevant) updates; a sample-count-weighted mean (FedAvg-style) is
provided as an option.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.fl.client import ClientUpdate

__all__ = ["mean_aggregate", "weighted_mean_aggregate"]


def mean_aggregate(updates: Sequence[ClientUpdate]) -> np.ndarray:
    """u_bar = (1/|S|) * sum of received updates (Algorithm 1, line 8)."""
    if not updates:
        raise ValueError("cannot aggregate zero updates")
    stacked = np.stack([u.update for u in updates])
    return stacked.mean(axis=0)


def weighted_mean_aggregate(updates: Sequence[ClientUpdate]) -> np.ndarray:
    """Sample-count-weighted mean (FedAvg weighting)."""
    if not updates:
        raise ValueError("cannot aggregate zero updates")
    weights = np.asarray([u.n_samples for u in updates], dtype=float)
    if np.any(weights <= 0):
        raise ValueError("all clients must have positive sample counts")
    weights /= weights.sum()
    stacked = np.stack([u.update for u in updates])
    return np.tensordot(weights, stacked, axes=1)
