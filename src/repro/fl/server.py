"""The central server: global model state plus feedback broadcasting."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.feedback import GlobalUpdateEstimator
from repro.fl.aggregation import mean_aggregate, weighted_mean_aggregate
from repro.fl.client import ClientUpdate

__all__ = ["FLServer"]


class FLServer:
    """Holds the global parameters and aggregates received updates.

    Implements Algorithm 1's GlobalOptimization: after collecting the
    relevant updates S_t, the global update is their mean, the model is
    moved by it, and the update is remembered as the next round's
    feedback u_bar_t.
    """

    def __init__(
        self,
        initial_params: np.ndarray,
        weighted: bool = False,
        feedback_staleness: int = 1,
    ) -> None:
        params = np.asarray(initial_params, dtype=float).reshape(-1)
        if params.size == 0:
            raise ValueError("initial parameters cannot be empty")
        self.global_params = params.copy()
        self.weighted = weighted
        self.estimator = GlobalUpdateEstimator(
            params.size, staleness=feedback_staleness
        )

    @property
    def n_params(self) -> int:
        return self.global_params.size

    @property
    def feedback(self) -> np.ndarray:
        """u_bar broadcast to clients alongside the global model."""
        return self.estimator.estimate

    def apply_round(
        self, updates: List[ClientUpdate], scale: float = 1.0
    ) -> Optional[np.ndarray]:
        """Aggregate ``updates`` and advance the global model.

        Returns the global update applied, or ``None`` when no updates
        arrived (the model and feedback are then left untouched).

        ``scale`` damps the merge — the async engine's staleness weight
        w(s): a stale round's aggregate moves the model (and feeds the
        next feedback) by only ``scale`` of itself.  The default 1.0
        skips the multiply entirely, so synchronous arithmetic is
        bitwise what it always was.
        """
        if not np.isfinite(scale) or scale <= 0.0:
            raise ValueError(f"scale must be a positive finite float, got {scale}")
        if not updates:
            return None
        for u in updates:
            if u.update.shape != (self.n_params,):
                raise ValueError(
                    f"client {u.client_id} sent an update of shape "
                    f"{u.update.shape}, expected ({self.n_params},)"
                )
        aggregate = (
            weighted_mean_aggregate(updates)
            if self.weighted
            else mean_aggregate(updates)
        )
        if scale != 1.0:
            aggregate = aggregate * scale
        self.global_params += aggregate
        self.estimator.observe(aggregate)
        return aggregate
