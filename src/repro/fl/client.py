"""A federated client: private data plus local optimisation.

Per the paper's Eq. (2), a client's *update* for round t is the total
parameter motion of its local training started from the broadcast
global model: u_{k,t} = x_local_final - x_{t-1} (the sum of its
-eta * gradient steps over E local epochs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.workspace import ModelWorkspace
from repro.utils.rng import RngLike, ensure_rng, restore_generator

__all__ = ["ClientUpdate", "FLClient"]


@dataclass
class ClientUpdate:
    """Result of one client's local round."""

    client_id: int
    update: np.ndarray
    n_samples: int
    train_loss: float


class FLClient:
    """One participating device: a data shard and a batching stream."""

    def __init__(
        self,
        client_id: int,
        train_data: Dataset,
        rng: RngLike = None,
    ) -> None:
        if client_id < 0:
            raise ValueError("client_id must be >= 0")
        self.client_id = client_id
        self.train_data = train_data  # ckpt: transient — immutable dataset, re-supplied at build
        self._rng = ensure_rng(rng)

    @property
    def n_samples(self) -> int:
        return len(self.train_data)

    def rng_state(self) -> Dict[str, Any]:
        """Picklable snapshot of the client's RNG stream position.

        The process executor ships this to the worker that runs the
        client and ships the advanced state back, so the parent's
        client objects stay the single source of RNG truth and every
        backend consumes each client stream identically.
        """
        return self._rng.bit_generator.state

    def set_rng_state(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot produced by :meth:`rng_state`."""
        if type(self._rng.bit_generator).__name__ != state["bit_generator"]:
            self._rng = restore_generator(state)
        else:
            self._rng.bit_generator.state = state

    def epoch_order(self) -> np.ndarray:
        """Draw one epoch's sample permutation from this client's stream.

        Exactly the single ``shuffle`` that ``Dataset.batches`` performs
        per epoch, exposed so the batched executor can drive per-client
        minibatch order while computing many clients jointly.  Local
        training consumes no other client randomness, so drawing all E
        epoch permutations up front leaves the stream in the same state
        as E serial epoch iterations — the client object stays the
        single source of RNG truth, the same invariant the process
        executor maintains by round-tripping :meth:`rng_state`.
        """
        order = np.arange(self.n_samples)
        self._rng.shuffle(order)
        return order

    def compute_update(
        self,
        workspace: ModelWorkspace,
        global_params: np.ndarray,
        lr: float,
        local_epochs: int,
        batch_size: int,
    ) -> ClientUpdate:
        """Run E local epochs of minibatch SGD from ``global_params``.

        The workspace is loaded with the global model first, so calling
        this for many clients from a single shared workspace is safe.

        ``train_loss`` is the **flat mean over all E x B batch losses**
        — epochs and batches weighted equally, including the ragged
        final batch of each epoch (whose loss is already a mean over
        fewer samples).  This reduction is part of the cross-backend
        contract: the batched executor reproduces exactly the same
        per-client list of batch-loss floats and the same ``np.mean``
        over it, so loss histories digest-match bit for bit.
        """
        if lr <= 0:
            raise ValueError("lr must be positive")
        workspace.load_flat(global_params)
        losses = []
        for _ in range(local_epochs):
            for xb, yb in self.train_data.batches(batch_size, rng=self._rng):
                losses.append(workspace.train_step(xb, yb, lr))
        # Flatten straight into the update buffer and subtract in place:
        # one n_params allocation per client instead of two (the update
        # array itself must be fresh — it outlives this call).
        update = workspace.get_flat(
            out=np.empty(workspace.n_params, dtype=float)
        )
        update -= global_params
        return ClientUpdate(
            client_id=self.client_id,
            update=update,
            n_samples=self.n_samples,
            train_loss=float(np.mean(losses)),
        )

    def __repr__(self) -> str:
        return f"FLClient(id={self.client_id}, n={self.n_samples})"
