"""Per-round client participation: sampling and failure injection.

The paper assumes every client participates in every synchronous round.
Real deployments (McMahan et al., the paper's reference [5]) select a
fraction C of clients per round, and devices drop out mid-round.  These
samplers slot into :class:`~repro.fl.trainer.FederatedTrainer` to model
both; CMFL is unchanged -- whoever participates still runs the
relevance check before uploading.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.fl.client import FLClient
from repro.utils.rng import RngLike, ensure_rng, restore_generator

__all__ = [
    "ClientSampler",
    "FullParticipation",
    "UniformSampler",
    "UnreliableParticipation",
]


class ClientSampler:
    """Chooses which clients train in a given round.

    ``state_dict``/``load_state_dict`` persist whatever a sampler needs
    to keep its selection sequence going across a checkpoint/resume
    (the RNG state, for the random samplers); deterministic samplers
    carry nothing.
    """

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless, but the snapshot "
                f"carries state: {sorted(state)}"
            )


class FullParticipation(ClientSampler):
    """Every client, every round (the paper's setting)."""

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        del iteration
        return list(clients)


class UniformSampler(ClientSampler):
    """A uniformly random fraction C of clients per round (FedAvg's C)."""

    def __init__(self, fraction: float, rng: RngLike = None) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction  # ckpt: transient — constructor constant
        self._rng = ensure_rng(rng)

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        del iteration
        k = max(1, int(round(self.fraction * len(clients))))
        idx = self._rng.choice(len(clients), size=k, replace=False)
        return [clients[i] for i in sorted(idx)]

    def state_dict(self) -> Dict[str, Any]:
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._rng = restore_generator(state["rng"])


class UnreliableParticipation(ClientSampler):
    """Failure injection: each selected client drops out with probability p.

    Models devices losing connectivity mid-round; at least one survivor
    is guaranteed (a fully dead round would deadlock a synchronous
    barrier, which real servers handle with timeouts we do not model).
    """

    def __init__(
        self,
        base: ClientSampler,
        drop_probability: float,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self.base = base
        self.drop_probability = drop_probability  # ckpt: transient — constructor constant
        self._rng = ensure_rng(rng)

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        selected = self.base.select(iteration, clients)
        survivors = [
            c for c in selected if self._rng.random() >= self.drop_probability
        ]
        if not survivors:
            keep = self._rng.integers(0, len(selected))
            survivors = [selected[keep]]
        return survivors

    def state_dict(self) -> Dict[str, Any]:
        return {
            "rng": self._rng.bit_generator.state,
            "base": self.base.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._rng = restore_generator(state["rng"])
        self.base.load_state_dict(state["base"])
