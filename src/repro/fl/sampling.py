"""Per-round client participation: sampling and failure injection.

The paper assumes every client participates in every synchronous round.
Real deployments (McMahan et al., the paper's reference [5]) select a
fraction C of clients per round, and devices drop out mid-round.  These
samplers slot into :class:`~repro.fl.trainer.FederatedTrainer` to model
both; CMFL is unchanged -- whoever participates still runs the
relevance check before uploading.

Samplers are **index-space**: :meth:`ClientSampler.select_indices`
draws client indices from ``range(n_population)`` without ever
materializing the pool, so the same sampler drives a 30-object client
list and a million-row :class:`~repro.fl.store.ClientStateStore`
(ROADMAP #2).  :meth:`ClientSampler.select` is a thin wrapper that
indexes into an eager client list; both paths consume identical RNG
draws, so digests are unchanged for existing workloads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.fl.client import FLClient
from repro.utils.rng import RngLike, ensure_rng, restore_generator

__all__ = [
    "AvailabilitySampler",
    "ClientSampler",
    "FullParticipation",
    "UniformSampler",
    "UnreliableParticipation",
    "diurnal_trace",
]


def diurnal_trace(
    period: int = 24, low: float = 0.2, high: float = 0.9
) -> List[float]:
    """A sinusoidal availability trace for :class:`AvailabilitySampler`.

    One cycle of ``period`` rounds oscillating between ``low`` (the
    overnight trough) and ``high`` (the evening peak) — the diurnal
    shape cross-device availability studies report (Ribero & Vikalo
    2020).  Deterministic, so two runs built from the same arguments
    sample identical cohorts.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    if not 0.0 < low <= high <= 1.0:
        raise ValueError(
            f"need 0 < low <= high <= 1, got low={low}, high={high}"
        )
    mid, amp = (high + low) / 2.0, (high - low) / 2.0
    phase = 2.0 * np.pi * np.arange(period) / period
    return [float(f) for f in mid - amp * np.cos(phase)]


class ClientSampler:
    """Chooses which clients train in a given round.

    Subclasses implement :meth:`select_indices` over the population
    index space; :meth:`select` derives the object-list form from it.
    ``state_dict``/``load_state_dict`` persist whatever a sampler needs
    to keep its selection sequence going across a checkpoint/resume
    (the RNG state, for the random samplers); deterministic samplers
    carry nothing.
    """

    def select_indices(self, iteration: int, n_population: int) -> np.ndarray:
        """Indices of this round's cohort, drawn from ``range(n_population)``.

        Cost must scale with the cohort, not the population: no
        O(n_population) Python list building per round.
        """
        raise NotImplementedError

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        indices = self.select_indices(iteration, len(clients))
        return [clients[int(i)] for i in indices]

    def state_dict(self) -> Dict[str, Any]:
        return {}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if state:
            raise ValueError(
                f"{type(self).__name__} is stateless, but the snapshot "
                f"carries state: {sorted(state)}"
            )


class FullParticipation(ClientSampler):
    """Every client, every round (the paper's setting)."""

    def select_indices(self, iteration: int, n_population: int) -> np.ndarray:
        del iteration
        return np.arange(n_population, dtype=np.int64)

    def select(self, iteration: int, clients: Sequence[FLClient]) -> List[FLClient]:
        del iteration
        return list(clients)


class UniformSampler(ClientSampler):
    """A uniformly random cohort per round: FedAvg's C, or a fixed count.

    Exactly one of ``fraction`` (cohort = round(C * population)) or
    ``count`` (fixed cohort size, the cross-device setting where the
    cohort does not scale with the pool) must be given.  The draw is
    one index-space ``rng.choice`` without replacement — O(cohort),
    independent of population size.
    """

    def __init__(
        self,
        fraction: Optional[float] = None,
        rng: RngLike = None,
        count: Optional[int] = None,
    ) -> None:
        if (fraction is None) == (count is None):
            raise ValueError("give exactly one of fraction or count")
        if fraction is not None and not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if count is not None and count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.fraction = fraction  # ckpt: transient — constructor constant
        self.count = count  # ckpt: transient — constructor constant
        self._rng = ensure_rng(rng)

    def cohort_size(self, n_population: int) -> int:
        if self.count is not None:
            if self.count > n_population:
                raise ValueError(
                    f"cohort count {self.count} exceeds population "
                    f"{n_population}"
                )
            return self.count
        return max(1, int(round(self.fraction * n_population)))

    def select_indices(self, iteration: int, n_population: int) -> np.ndarray:
        del iteration
        k = self.cohort_size(n_population)
        idx = self._rng.choice(n_population, size=k, replace=False)
        return np.sort(idx).astype(np.int64)

    def state_dict(self) -> Dict[str, Any]:
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._rng = restore_generator(state["rng"])


class AvailabilitySampler(ClientSampler):
    """Cohorts drawn from a time-varying available slice of the pool.

    Cross-device populations are never all online: availability follows
    a diurnal cycle (Ribero & Vikalo 2020; Chen et al. 2020 assume the
    same regime).  ``trace`` gives the available *fraction* of the
    population per round, cycled; each round the available set is a
    contiguous wrap-around window of the index space whose start is a
    pure function of the iteration (deterministic, so resume cannot
    shift it), and the cohort is a uniform draw from that window.
    O(cohort) per round, like :class:`UniformSampler`.
    """

    def __init__(
        self,
        count: int,
        trace: Sequence[float],
        rng: RngLike = None,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if len(trace) == 0:
            raise ValueError("availability trace must be non-empty")
        for f in trace:
            if not 0.0 < f <= 1.0:
                raise ValueError(
                    f"trace fractions must be in (0, 1], got {f}"
                )
        self.count = count  # ckpt: transient — constructor constant
        self.trace = [float(f) for f in trace]  # ckpt: transient — constructor constant
        self._rng = ensure_rng(rng)

    def available(self, iteration: int, n_population: int) -> int:
        """Size of round ``iteration``'s available window (>= count)."""
        fraction = self.trace[(iteration - 1) % len(self.trace)]
        return min(n_population, max(self.count, int(fraction * n_population)))

    def select_indices(self, iteration: int, n_population: int) -> np.ndarray:
        if self.count > n_population:
            raise ValueError(
                f"cohort count {self.count} exceeds population "
                f"{n_population}"
            )
        avail = self.available(iteration, n_population)
        # The window walks the index space one window per round, so
        # every client is periodically available; purely a function of
        # the iteration, never of RNG state.
        start = ((iteration - 1) * avail) % n_population
        picks = self._rng.choice(avail, size=self.count, replace=False)
        indices = (start + np.sort(picks).astype(np.int64)) % n_population
        return np.sort(indices)

    def state_dict(self) -> Dict[str, Any]:
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._rng = restore_generator(state["rng"])


class UnreliableParticipation(ClientSampler):
    """Failure injection: each selected client drops out with probability p.

    Models devices losing connectivity mid-round; at least one survivor
    is guaranteed (a fully dead round would deadlock a synchronous
    barrier, which real servers handle with timeouts we do not model).
    The dropout draws are one vectorized ``rng.random`` over the base
    cohort — bit-identical to the former per-client scalar draws, so
    existing digests are unchanged.
    """

    def __init__(
        self,
        base: ClientSampler,
        drop_probability: float,
        rng: RngLike = None,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self.base = base
        self.drop_probability = drop_probability  # ckpt: transient — constructor constant
        self._rng = ensure_rng(rng)

    def select_indices(self, iteration: int, n_population: int) -> np.ndarray:
        selected = self.base.select_indices(iteration, n_population)
        draws = self._rng.random(len(selected))
        survivors = selected[draws >= self.drop_probability]
        if survivors.size == 0:
            keep = self._rng.integers(0, len(selected))
            survivors = selected[[keep]]
        return survivors

    def state_dict(self) -> Dict[str, Any]:
        return {
            "rng": self._rng.bit_generator.state,
            "base": self.base.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._rng = restore_generator(state["rng"])
        self.base.load_state_dict(state["base"])
