"""Pairwise-masking secure aggregation (Bonawitz et al., the paper's [15]).

The paper's privacy story rests on clients uploading only ephemeral,
anonymous updates; its reference [15] goes further and hides individual
updates from the server entirely.  This module implements the core
protocol over our flat update vectors:

- every pair of participating clients (i, j) derives a shared mask
  m_ij from a common seed;
- client i uploads  u_i + sum_{j>i} m_ij - sum_{j<i} m_ji;
- the masks cancel pairwise in the server's sum, so the server learns
  only the aggregate -- never an individual update.

CMFL composes naturally: the relevance check runs *client-side* on the
raw update before masking, so filtering costs no privacy.  The dropout
problem (masks of vanished clients not cancelling) is handled the way
the real protocol does conceptually: the surviving clients re-reveal
the pairwise seeds they shared with the dropped client so the server
can subtract the orphaned masks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = ["SecureAggregator", "pairwise_mask"]


def _pair_seed(master_seed: int, i: int, j: int) -> int:
    """Deterministic per-pair seed; symmetric in (i, j)."""
    lo, hi = (i, j) if i < j else (j, i)
    mix = np.random.SeedSequence(entropy=[master_seed, lo, hi])
    return int(mix.generate_state(1)[0])


def pairwise_mask(
    master_seed: int, i: int, j: int, n_params: int, scale: float = 1.0
) -> np.ndarray:
    """The mask client pair (i, j) shares; identical for both orders."""
    if i == j:
        raise ValueError("a client does not mask against itself")
    if n_params < 1:
        raise ValueError("n_params must be >= 1")
    gen = np.random.default_rng(_pair_seed(master_seed, i, j))
    return gen.normal(0.0, scale, size=n_params)


class SecureAggregator:
    """Server-side state of one secure-aggregation round."""

    def __init__(
        self,
        participant_ids: Sequence[int],
        n_params: int,
        master_seed: int,
        mask_scale: float = 1.0,
    ) -> None:
        ids = list(participant_ids)
        if len(set(ids)) != len(ids):
            raise ValueError("participant ids must be unique")
        if len(ids) < 2:
            raise ValueError("secure aggregation needs >= 2 participants")
        self.participant_ids = ids
        self.n_params = n_params
        self.master_seed = master_seed
        self.mask_scale = mask_scale
        self._received: Dict[int, np.ndarray] = {}

    # -- client side ----------------------------------------------------
    def mask_update(self, client_id: int, update: np.ndarray) -> np.ndarray:
        """What client ``client_id`` actually uploads."""
        if client_id not in self.participant_ids:
            raise ValueError(f"client {client_id} is not in this round")
        vec = np.asarray(update, dtype=float).reshape(-1)
        if vec.size != self.n_params:
            raise ValueError("update size mismatch")
        masked = vec.copy()
        for other in self.participant_ids:
            if other == client_id:
                continue
            mask = pairwise_mask(
                self.master_seed, client_id, other, self.n_params,
                self.mask_scale,
            )
            masked += mask if client_id < other else -mask
        return masked

    # -- server side ----------------------------------------------------
    def submit(self, client_id: int, masked_update: np.ndarray) -> None:
        if client_id in self._received:
            raise ValueError(f"client {client_id} already submitted")
        if client_id not in self.participant_ids:
            raise ValueError(f"client {client_id} is not in this round")
        self._received[client_id] = np.asarray(
            masked_update, dtype=float
        ).reshape(-1)

    def missing(self) -> List[int]:
        return [c for c in self.participant_ids if c not in self._received]

    def aggregate(self) -> Tuple[np.ndarray, int]:
        """(sum of raw updates, number of contributors).

        If some participants dropped after masks were established, the
        survivors' orphaned masks are reconstructed from the shared
        seeds and subtracted -- the protocol's unmasking phase.
        """
        if not self._received:
            raise ValueError("no submissions to aggregate")
        total = np.zeros(self.n_params, dtype=float)
        for vec in self._received.values():
            total += vec
        for dropped in self.missing():
            for survivor in self._received:
                mask = pairwise_mask(
                    self.master_seed, survivor, dropped, self.n_params,
                    self.mask_scale,
                )
                # Remove the survivor's contribution of this orphan mask.
                total -= mask if survivor < dropped else -mask
        return total, len(self._received)

    def aggregate_mean(self) -> np.ndarray:
        """The mean update (Algorithm 1 line 8) under the hood of masks."""
        total, count = self.aggregate()
        return total / count
