"""Client-level differential privacy for federated updates.

The paper's Fig. 1 methodology follows Geyer et al. ("Differentially
private federated learning: a client level perspective", its reference
[19]): each client's update is clipped to a norm bound and Gaussian
noise is added before aggregation.  This module provides that
mechanism plus a basic (epsilon, delta) accountant under Gaussian-
mechanism composition, so privacy-noised runs can be driven through the
same trainer via an update transform.

CMFL interacts with DP in one measurable way: noise randomises the
signs of small-magnitude coordinates, diluting the relevance signal --
the same interaction the compression pipeline exposes.  The transform
is therefore applied *after* the relevance check (clip/noise what you
upload, judge what you trained), which is also the privacy-correct
order because withheld updates never leave the device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "GaussianMechanism",
    "PrivacySpent",
    "PrivatizedPolicy",
    "clip_update",
]


def clip_update(update: np.ndarray, clip_norm: float) -> np.ndarray:
    """Scale ``update`` down to at most ``clip_norm`` in L2 (a copy)."""
    if clip_norm <= 0:
        raise ValueError(f"clip_norm must be positive, got {clip_norm}")
    vec = np.asarray(update, dtype=float).reshape(-1)
    norm = float(np.linalg.norm(vec))
    if norm <= clip_norm or norm == 0.0:
        return vec.copy()
    return vec * (clip_norm / norm)


@dataclass
class PrivacySpent:
    """Cumulative privacy cost under basic composition."""

    epsilon: float
    delta: float
    steps: int


class GaussianMechanism:
    """Clip-and-noise transform for one client's uploads.

    ``noise_multiplier`` is sigma / clip_norm, the standard
    parameterisation: per-upload noise is N(0, (noise_multiplier *
    clip_norm)^2) per coordinate.  The accountant uses the classic
    single-query bound eps = sqrt(2 ln(1.25/delta)) / noise_multiplier
    with linear (basic) composition over uploads -- deliberately
    conservative and simple; swap in a moments accountant for tight
    budgets.
    """

    def __init__(
        self,
        clip_norm: float,
        noise_multiplier: float,
        delta: float = 1e-5,
        rng: RngLike = None,
    ) -> None:
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be >= 0")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        self.clip_norm = clip_norm
        self.noise_multiplier = noise_multiplier
        self.delta = delta
        self._rng = ensure_rng(rng)
        self._steps = 0

    def privatize(self, update: np.ndarray) -> np.ndarray:
        """Clip to the norm bound and add calibrated Gaussian noise."""
        clipped = clip_update(update, self.clip_norm)
        if self.noise_multiplier > 0:
            sigma = self.noise_multiplier * self.clip_norm
            clipped = clipped + self._rng.normal(0.0, sigma, size=clipped.size)
        self._steps += 1
        return clipped

    def epsilon_per_step(self) -> float:
        """Single-upload epsilon for this mechanism's parameters."""
        if self.noise_multiplier == 0:
            return float("inf")
        return math.sqrt(2.0 * math.log(1.25 / self.delta)) / self.noise_multiplier

    def spent(self) -> PrivacySpent:
        """Total privacy cost so far under basic composition."""
        eps = self.epsilon_per_step()
        return PrivacySpent(
            epsilon=eps * self._steps if math.isfinite(eps) else float("inf"),
            delta=self.delta * self._steps,
            steps=self._steps,
        )


class PrivatizedPolicy:
    """Compose an upload policy with the Gaussian mechanism.

    Judges the *raw* update (relevance is computed on-device, costing no
    privacy) and, when it passes, replaces the upload in place with its
    clipped-and-noised version -- what actually leaves the device.
    Mirrors :class:`repro.compress.pipeline.CompressionPipeline`.
    """

    def __init__(self, inner, mechanism: GaussianMechanism) -> None:
        self.inner = inner
        self.mechanism = mechanism
        self.name = f"{inner.name}+dp"

    def decide(self, update: np.ndarray, ctx):
        decision = self.inner.decide(update, ctx)
        if decision.upload:
            update[...] = self.mechanism.privatize(update)
        return decision
