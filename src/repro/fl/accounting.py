"""Communication accounting (paper Sec. II-B).

The paper's primary metric is the *accumulated communication rounds*
Phi = sum_t |S_t| -- the total number of full updates uploaded.  The
EC2 experiment (Fig. 7b) additionally reports the uploaded byte volume,
where a filtered client sends only a tiny status message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.nn.serialization import STATUS_MESSAGE_BYTES, update_nbytes
from repro.obs.metrics import MetricsRegistry

__all__ = ["CommunicationLedger"]


@dataclass
class CommunicationLedger:
    """Running totals of uploads, skips and bytes for one federated run.

    When a ``metrics`` registry is attached (the trainer passes its
    tracer's), every recorded round also streams the first-class
    ``comm.*`` counters — uploads, skips, uploaded/status bytes — so a
    trace carries the paper's communication measurements alongside its
    timing spans.
    """

    n_params: int
    accumulated_rounds: int = 0
    uploaded_bytes: int = 0
    status_bytes: int = 0
    skips_per_client: Dict[int, int] = field(default_factory=dict)
    uploads_per_client: Dict[int, int] = field(default_factory=dict)
    rounds_per_iteration: List[int] = field(default_factory=list)
    staleness_total: int = 0
    staleness_max: int = 0
    metrics: Optional[MetricsRegistry] = field(  # ckpt: transient — live registry binding
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_params < 1:
            raise ValueError("n_params must be >= 1")

    def record_round(
        self,
        uploaded_ids: List[int],
        skipped_ids: List[int],
        staleness: int = 0,
    ) -> None:
        """Account one iteration's traffic.

        ``staleness`` is the round's aggregation staleness (0 under the
        synchronous trainer); the ledger keeps the running total and
        maximum so byte accounting and staleness accounting travel
        together through checkpoints.
        """
        r_t = len(uploaded_ids)
        self.staleness_total += int(staleness)
        if staleness > self.staleness_max:
            self.staleness_max = int(staleness)
        self.accumulated_rounds += r_t
        self.rounds_per_iteration.append(r_t)
        upload_bytes = r_t * update_nbytes(self.n_params)
        skip_bytes = len(skipped_ids) * STATUS_MESSAGE_BYTES
        self.uploaded_bytes += upload_bytes
        self.status_bytes += skip_bytes
        for cid in uploaded_ids:
            self.uploads_per_client[cid] = self.uploads_per_client.get(cid, 0) + 1
        for cid in skipped_ids:
            self.skips_per_client[cid] = self.skips_per_client.get(cid, 0) + 1
        if self.metrics is not None:
            self.metrics.counter("comm.uploads").inc(r_t)
            self.metrics.counter("comm.skips").inc(len(skipped_ids))
            self.metrics.counter("comm.uploaded_bytes").inc(upload_bytes)
            self.metrics.counter("comm.status_bytes").inc(skip_bytes)

    @property
    def total_bytes(self) -> int:
        """All upstream traffic: full updates plus skip-status messages."""
        return self.uploaded_bytes + self.status_bytes

    def total_megabytes(self) -> float:
        return self.total_bytes / 1e6

    def elimination_counts(self, n_clients: int) -> List[int]:
        """Per-client skip counts, densely indexed 0..n_clients-1 (Fig. 6 input)."""
        return [self.skips_per_client.get(c, 0) for c in range(n_clients)]

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the running totals (keys stringified —
        JSON objects cannot carry int keys)."""
        return {
            "n_params": self.n_params,
            "accumulated_rounds": self.accumulated_rounds,
            "uploaded_bytes": self.uploaded_bytes,
            "status_bytes": self.status_bytes,
            "skips_per_client": {
                str(k): v for k, v in self.skips_per_client.items()
            },
            "uploads_per_client": {
                str(k): v for k, v in self.uploads_per_client.items()
            },
            "rounds_per_iteration": list(self.rounds_per_iteration),
            "staleness_total": self.staleness_total,
            "staleness_max": self.staleness_max,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (``metrics`` binding is
        left untouched — counters resume from the tracer's own state)."""
        if int(state["n_params"]) != self.n_params:
            raise ValueError(
                f"ledger state is for {state['n_params']} parameters, "
                f"not {self.n_params}"
            )
        self.accumulated_rounds = int(state["accumulated_rounds"])
        self.uploaded_bytes = int(state["uploaded_bytes"])
        self.status_bytes = int(state["status_bytes"])
        self.skips_per_client = {
            int(k): int(v) for k, v in state["skips_per_client"].items()
        }
        self.uploads_per_client = {
            int(k): int(v) for k, v in state["uploads_per_client"].items()
        }
        self.rounds_per_iteration = [
            int(r) for r in state["rounds_per_iteration"]
        ]
        # .get: snapshots written before the async engine carry no
        # staleness keys; those runs were synchronous, so zeros.
        self.staleness_total = int(state.get("staleness_total", 0))
        self.staleness_max = int(state.get("staleness_max", 0))
