"""The pluggable client-execution engine (serial / thread / process / batched).

The paper ran CMFL on a 30-node EC2 cluster where every client trains
concurrently; this module recovers that concurrency in-process.  The
trainer splits each round into a *compute* half (fan out
``FLClient.compute_update`` over the participants) and a
*decide/aggregate* half (a strictly ordered reduction back in the
trainer).  Executors own only the compute half, which is what makes
every backend bitwise-identical:

* each client draws minibatches from its **own** RNG stream, so the
  order in which clients physically run cannot change any draw;
* results are always returned **aligned with the participant list**
  (the deterministic reduction order), never in completion order;
* the process backend ships each client's RNG state to the worker and
  ships the advanced state back, so the parent's client objects remain
  the single source of randomness truth across rounds and backends.

The process backend keeps a persistent worker pool; each worker builds
a replica :class:`~repro.fl.workspace.ModelWorkspace` once from a
picklable :class:`WorkspaceSpec` and reads the per-round broadcast
parameter vector from POSIX shared memory, so the steady-state
per-round IPC is one shared-memory write plus ``n_clients`` small task
tuples and update vectors.

The batched backend trades concurrency for vectorization: same-schedule
clients are stacked into one leading client axis and the round's
compute half runs as a handful of large numpy kernels through a
:class:`~repro.fl.batched.BatchedWorkspace`, with a per-client fallback
loop for stragglers and unsupported models.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from queue import SimpleQueue
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fl.batched import BatchedWorkspace
from repro.fl.client import ClientUpdate, FLClient
from repro.fl.config import EXECUTOR_BACKENDS
from repro.fl.workspace import ModelWorkspace
from repro.nn.module import BatchedUnsupported
from repro.obs import NULL_TRACER

__all__ = [
    "BatchedExecutor",
    "ClientExecutionError",
    "ClientExecutor",
    "ProcessExecutor",
    "RoundPlan",
    "SerialExecutor",
    "ThreadExecutor",
    "WorkspaceSpec",
    "make_executor",
    "resolve_worker_count",
]


@dataclass(frozen=True)
class RoundPlan:
    """The compute half of one round: what every participant must do."""

    iteration: int
    lr: float
    local_epochs: int
    batch_size: int
    #: The broadcast x_{t-1} all participants start from (read-only).
    global_params: np.ndarray


class ClientExecutionError(RuntimeError):
    """A client's local computation failed; carries structured context.

    Beyond the formatted message, the failure's coordinates are plain
    attributes so callers (and trace sinks) can act on them without
    parsing strings: ``client_id``, ``iteration`` (the round, when
    known), ``backend`` (which executor ran the client), ``elapsed_s``
    (time spent before the failure surfaced) and ``cause_type`` (the
    original exception's class name).
    """

    def __init__(
        self,
        client_id: int,
        message: str,
        iteration: Optional[int] = None,
        backend: Optional[str] = None,
        elapsed_s: Optional[float] = None,
        cause_type: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.client_id = client_id
        self.iteration = iteration
        self.backend = backend
        self.elapsed_s = elapsed_s
        self.cause_type = cause_type

    def context(self) -> Dict[str, Any]:
        """The structured failure coordinates, e.g. for logging."""
        return {
            "client_id": self.client_id,
            "iteration": self.iteration,
            "backend": self.backend,
            "elapsed_s": self.elapsed_s,
            "cause_type": self.cause_type,
        }


def resolve_worker_count(n_workers: int) -> int:
    """``0`` means "one worker per CPU"; negative counts are invalid."""
    if n_workers < 0:
        raise ValueError(f"n_workers must be >= 0, got {n_workers}")
    if n_workers:
        return n_workers
    return max(1, os.cpu_count() or 1)


def _rebuild_pickled_workspace(payload: bytes) -> ModelWorkspace:
    """Builder used by :meth:`WorkspaceSpec.from_workspace`."""
    return pickle.loads(payload)


@dataclass(frozen=True)
class WorkspaceSpec:
    """A picklable recipe for building replica workspaces.

    Workers cannot share the trainer's workspace (its parameter buffers
    are mutated by every ``train_step``), so the thread and process
    backends build one replica per worker from this spec.  ``builder``
    must be a module-level callable (picklable by reference) returning
    a fresh :class:`~repro.fl.workspace.ModelWorkspace` when called
    with ``kwargs``.  Replica initial parameters are irrelevant — every
    ``compute_update`` starts by loading the broadcast vector.
    """

    builder: Callable[..., ModelWorkspace]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> ModelWorkspace:
        workspace = self.builder(**self.kwargs)
        if not isinstance(workspace, ModelWorkspace):
            raise TypeError(
                f"spec builder {self.builder!r} returned "
                f"{type(workspace).__name__}, expected ModelWorkspace"
            )
        return workspace

    @classmethod
    def from_workspace(cls, workspace: ModelWorkspace) -> "WorkspaceSpec":
        """Snapshot an existing workspace into a picklable spec.

        The workspace (model, loss, optimizer, metric) is serialised
        eagerly, so later mutation of the original — including the
        transient forward-pass caches layers keep — does not leak into
        replicas built from the spec.
        """
        return cls(
            builder=_rebuild_pickled_workspace,
            kwargs={"payload": pickle.dumps(workspace)},
        )


class ClientExecutor:
    """Interface: run the compute half of one synchronous round."""

    name = "base"
    #: Observability hook; the allocation-free default is replaced by
    #: the trainer's tracer at ``bind`` time when tracing is on.
    tracer = NULL_TRACER

    def bind(
        self,
        workspace: ModelWorkspace,
        clients: Sequence[FLClient],
        spec: Optional[WorkspaceSpec] = None,
        tracer=None,
    ) -> None:
        """Called once by the trainer before the first round."""
        raise NotImplementedError

    def run_round(
        self, plan: RoundPlan, participants: Sequence[FLClient]
    ) -> List[ClientUpdate]:
        """Compute one update per participant.

        The returned list is aligned with ``participants`` regardless
        of the order in which backends finish individual clients; the
        trainer's decide/aggregate reduction therefore sees the same
        sequence under every backend.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/shared memory; idempotent."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(ClientExecutor):
    """The reference backend: clients run back to back on one workspace."""

    name = "serial"

    def __init__(self) -> None:
        self._workspace: Optional[ModelWorkspace] = None
        self.tracer = NULL_TRACER

    def bind(self, workspace, clients, spec=None, tracer=None) -> None:
        del clients, spec
        self._workspace = workspace
        self.tracer = tracer or NULL_TRACER

    def run_round(self, plan, participants):
        if self._workspace is None:
            raise RuntimeError("executor not bound to a trainer")
        tracer = self.tracer
        _emit_broadcast_span(tracer, plan, rt={"shm": False})
        results: List[ClientUpdate] = []
        round_start = monotonic()
        for client in participants:
            start = monotonic()
            try:
                update = client.compute_update(
                    self._workspace,
                    plan.global_params,
                    lr=plan.lr,
                    local_epochs=plan.local_epochs,
                    batch_size=plan.batch_size,
                )
            except Exception as exc:
                raise _client_failure(
                    exc, client, plan, self.name,
                    monotonic() - round_start, tracer,
                ) from exc
            _emit_task_span(
                tracer, plan, client, (0.0, monotonic() - start, "main")
            )
            results.append(update)
        return results


class BatchedExecutor(ClientExecutor):
    """Cross-client vectorized backend: cohorts run as stacked kernels.

    Participants are grouped into *cohorts* by shard size — equal
    ``n_samples`` means an identical epoch/batch schedule, so their
    compute stacks into one leading client axis.  Each cohort of two or
    more runs through a :class:`~repro.fl.batched.BatchedWorkspace`:
    the round's compute half becomes a handful of large numpy ops
    (stacked GEMMs, batched im2col/einsum) whose per-client slices are
    bitwise equal to the serial path.  Singleton cohorts — and entire
    federations whose model, loss or optimizer has no batched path —
    fall back to the serial per-client loop on the bound workspace, so
    heterogeneous stragglers never break a round.

    Per-client minibatch order comes from each client's own RNG stream
    via :meth:`~repro.fl.client.FLClient.epoch_order` — the in-process
    equivalent of the process backend's RNG state round-trip: the
    parent's client objects remain the single source of randomness
    truth, and every backend consumes each stream identically.

    Observability: ``client_compute`` spans are replayed in participant
    order with ``rt`` timings from the batched kernel — a cohort's wall
    time is attributed evenly across its members and the worker label
    names the cohort (``batched-<size>``), while the deterministic
    attrs stay identical to every other backend.
    """

    name = "batched"

    def __init__(self) -> None:
        self._workspace: Optional[ModelWorkspace] = None
        #: One engine per cohort size, built lazily and kept across
        #: rounds (cohort sizes repeat under full participation).
        self._engines: Dict[int, BatchedWorkspace] = {}
        self._unsupported: Optional[str] = None
        self.tracer = NULL_TRACER

    def bind(self, workspace, clients, spec=None, tracer=None) -> None:
        del clients, spec
        self._workspace = workspace
        self._engines = {}  # stale stacks would read the old model's shapes
        self._unsupported = None
        self.tracer = tracer or NULL_TRACER

    def _engine_for(self, size: int) -> Optional[BatchedWorkspace]:
        """The cohort engine, or None when this model must fall back."""
        if self._unsupported is not None:
            return None
        engine = self._engines.get(size)
        if engine is None:
            try:
                engine = BatchedWorkspace(self._workspace, size)
            except BatchedUnsupported as exc:
                # Remember why so every later cohort skips the retry.
                self._unsupported = str(exc)
                self.tracer.metrics.counter(
                    "runtime.executor.batched_fallbacks"
                ).inc()
                return None
            self._engines[size] = engine
        return engine

    def run_round(self, plan, participants):
        if self._workspace is None:
            raise RuntimeError("executor not bound to a trainer")
        tracer = self.tracer
        _emit_broadcast_span(tracer, plan, rt={"shm": False})
        round_start = monotonic()
        # Cohorts keyed by shard size; indices keep participant order
        # both within each cohort and for the final result alignment.
        cohorts: Dict[int, List[int]] = {}
        for idx, client in enumerate(participants):
            cohorts.setdefault(client.n_samples, []).append(idx)
        results: List[Optional[ClientUpdate]] = [None] * len(participants)
        timings: List[Optional[Tuple[float, float, str]]] = [None] * len(
            participants
        )
        # Probe batched support once with the largest multi-client
        # cohort; on BatchedUnsupported every cohort must fall back.
        multi_sizes = [len(ix) for ix in cohorts.values() if len(ix) > 1]
        batchable = bool(multi_sizes) and (
            self._engine_for(max(multi_sizes)) is not None
        )
        if not batchable:
            # Full per-client fallback, in **participant order**: with
            # a stateful optimizer the shared workspace's slot state
            # makes client order observable, and participant order is
            # the serial reference.  (The mixed path below never hits
            # this: batched support implies a stateless plain SGD, so
            # singleton stragglers can run interleaved with cohorts.)
            for idx, client in enumerate(participants):
                start = monotonic()
                try:
                    update = client.compute_update(
                        self._workspace,
                        plan.global_params,
                        lr=plan.lr,
                        local_epochs=plan.local_epochs,
                        batch_size=plan.batch_size,
                    )
                except Exception as exc:
                    raise _client_failure(
                        exc, client, plan, self.name,
                        monotonic() - round_start, tracer,
                    ) from exc
                results[idx] = update
                timings[idx] = (0.0, monotonic() - start, "main")
            for client, timing in zip(participants, timings):
                _emit_task_span(tracer, plan, client, timing)
            return results
        for n_samples in sorted(cohorts):
            indices = cohorts[n_samples]
            engine = self._engine_for(len(indices)) if len(indices) > 1 else None
            if engine is None:
                # Straggler path: a singleton cohort running the
                # serial reference on the bound workspace.
                for idx in indices:
                    client = participants[idx]
                    start = monotonic()
                    try:
                        update = client.compute_update(
                            self._workspace,
                            plan.global_params,
                            lr=plan.lr,
                            local_epochs=plan.local_epochs,
                            batch_size=plan.batch_size,
                        )
                    except Exception as exc:
                        raise _client_failure(
                            exc, client, plan, self.name,
                            monotonic() - round_start, tracer,
                        ) from exc
                    results[idx] = update
                    timings[idx] = (0.0, monotonic() - start, "main")
                continue
            cohort = [participants[idx] for idx in indices]
            start = monotonic()
            try:
                updates = self._run_cohort(engine, plan, cohort, n_samples)
            except Exception as exc:
                raise _client_failure(
                    exc, cohort[0], plan, self.name,
                    monotonic() - round_start, tracer,
                ) from exc
            per_client = (monotonic() - start) / len(cohort)
            worker = f"batched-{len(cohort)}"
            for idx, update in zip(indices, updates):
                results[idx] = update
                timings[idx] = (0.0, per_client, worker)
        for client, timing in zip(participants, timings):
            _emit_task_span(tracer, plan, client, timing)
        return results

    @staticmethod
    def _run_cohort(
        engine: BatchedWorkspace,
        plan: RoundPlan,
        cohort: Sequence[FLClient],
        n_samples: int,
    ) -> List[ClientUpdate]:
        """One cohort's E local epochs as stacked kernels."""
        if plan.lr <= 0:
            raise ValueError("lr must be positive")
        engine.load_global(plan.global_params)
        # Each client draws its E epoch permutations from its own
        # stream — exactly the draws Dataset.batches would make
        # serially; training consumes no other client randomness, so
        # the streams end the round in the identical state.
        orders = [
            [client.epoch_order() for _ in range(plan.local_epochs)]
            for client in cohort
        ]
        losses: List[List[float]] = [[] for _ in cohort]
        for epoch in range(plan.local_epochs):
            # One stacked gather of the whole permuted epoch per
            # client; per-step minibatches are then plain slices whose
            # per-client slabs are contiguous — the same memory layout
            # Dataset.batches hands the serial path.
            x_epoch = np.stack(
                [
                    client.train_data.x[orders[ci][epoch]]
                    for ci, client in enumerate(cohort)
                ]
            )
            y_epoch = np.stack(
                [
                    client.train_data.y[orders[ci][epoch]]
                    for ci, client in enumerate(cohort)
                ]
            )
            for start in range(0, n_samples, plan.batch_size):
                sl = slice(start, start + plan.batch_size)
                batch_losses = engine.train_step_all(
                    x_epoch[:, sl], y_epoch[:, sl], plan.lr
                )
                for ci in range(len(cohort)):
                    losses[ci].append(float(batch_losses[ci]))
        stacked = engine.extract_updates(plan.global_params)
        return [
            ClientUpdate(
                client_id=client.client_id,
                update=stacked[ci].copy(),
                n_samples=client.n_samples,
                # The same flat mean over all E x B batch losses the
                # serial client computes (see FLClient.compute_update).
                train_loss=float(np.mean(losses[ci])),
            )
            for ci, client in enumerate(cohort)
        ]


class ThreadExecutor(ClientExecutor):
    """A thread pool over a checkout-queue of replica workspaces.

    Each submitted client checks a replica out of the queue, trains on
    it and returns it, so at most ``n_workers`` replicas exist and no
    two threads ever share parameter buffers.  Client objects (and
    their RNGs) are the parent's own — each stream is touched only by
    its client's task, so concurrency cannot reorder draws.
    """

    name = "thread"

    def __init__(self, n_workers: int = 0) -> None:
        self.n_workers = resolve_worker_count(n_workers)
        self._spec: Optional[WorkspaceSpec] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._replicas: Optional[SimpleQueue] = None
        self.tracer = NULL_TRACER

    def bind(self, workspace, clients, spec=None, tracer=None) -> None:
        del clients
        # Snapshot now: the trainer has not run yet, so the pickled
        # model carries no bulky forward-pass caches.
        self._spec = spec or WorkspaceSpec.from_workspace(workspace)
        self.tracer = tracer or NULL_TRACER

    def _ensure_started(self) -> None:
        if self._pool is not None:
            return
        if self._spec is None:
            raise RuntimeError("executor not bound to a trainer")
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-client"
        )
        self._replicas = SimpleQueue()
        for _ in range(self.n_workers):
            self._replicas.put(self._spec.build())
        self.tracer.metrics.counter("runtime.executor.pool_starts").inc()

    def _run_one(
        self, client: FLClient, plan: RoundPlan, submit_ts: float
    ) -> Tuple[ClientUpdate, Tuple[float, float, str]]:
        start = monotonic()
        replica = self._replicas.get()
        try:
            update = client.compute_update(
                replica,
                plan.global_params,
                lr=plan.lr,
                local_epochs=plan.local_epochs,
                batch_size=plan.batch_size,
            )
        finally:
            self._replicas.put(replica)
        end = monotonic()
        timing = (start - submit_ts, end - start, threading.current_thread().name)
        return update, timing

    def run_round(self, plan, participants):
        self._ensure_started()
        tracer = self.tracer
        _emit_broadcast_span(tracer, plan, rt={"shm": False})
        round_start = monotonic()
        futures = [
            self._pool.submit(self._run_one, client, plan, monotonic())
            for client in participants
        ]
        payloads = _collect_in_order(
            futures, participants,
            plan=plan, backend=self.name, tracer=tracer, started=round_start,
        )
        results: List[ClientUpdate] = []
        for client, (update, timing) in zip(participants, payloads):
            _emit_task_span(tracer, plan, client, timing)
            results.append(update)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._replicas = None

    def __repr__(self) -> str:
        return f"ThreadExecutor(n_workers={self.n_workers})"


# ---------------------------------------------------------------------------
# Process backend worker side.  Module-level state + functions so everything
# the pool touches is picklable by reference under any start method.

_WORKER_STATE: Optional["_WorkerState"] = None


class _WorkerState:
    """Per-worker-process state: replica workspace, clients, broadcast."""

    __slots__ = ("workspace", "clients", "shm", "global_view")

    def __init__(self, workspace, clients, shm, global_view) -> None:
        self.workspace = workspace
        self.clients = clients
        self.shm = shm
        self.global_view = global_view


def _init_worker(
    spec: WorkspaceSpec,
    clients: Sequence[FLClient],
    shm_name: str,
    n_params: int,
) -> None:
    global _WORKER_STATE
    shm = shared_memory.SharedMemory(name=shm_name)
    view = np.ndarray((n_params,), dtype=np.float64, buffer=shm.buf)
    _WORKER_STATE = _WorkerState(
        workspace=spec.build(),
        clients={c.client_id: c for c in clients},
        shm=shm,
        global_view=view,
    )


def _run_client_task(
    client_id: int,
    rng_state: Dict[str, Any],
    lr: float,
    local_epochs: int,
    batch_size: int,
    submit_ts: float,
):
    """Run one client in the worker.

    Returns ``(update, advanced rng state, timing)`` where timing is
    ``(queue_wait, dur, worker)``.  Queue wait is ``start - submit_ts``;
    both ends are ``time.monotonic`` readings, which on Linux share
    CLOCK_MONOTONIC across the parent and its worker processes.
    """
    start = monotonic()
    state = _WORKER_STATE
    if state is None:
        raise RuntimeError("worker pool was not initialised")
    client = state.clients[client_id]
    client.set_rng_state(rng_state)
    # The parent only writes the shared broadcast between rounds, while
    # no task is in flight, so reading the view directly is safe and
    # saves a copy; compute_update never mutates its global_params.
    result = client.compute_update(
        state.workspace,
        state.global_view,
        lr=lr,
        local_epochs=local_epochs,
        batch_size=batch_size,
    )
    timing = (start - submit_ts, monotonic() - start, f"pid-{os.getpid()}")
    return result, client.rng_state(), timing


class ProcessExecutor(ClientExecutor):
    """A persistent ``multiprocessing`` pool of replica workspaces.

    Startup (lazy, on the first round): a shared-memory block sized
    ``n_params`` float64s is created and every worker builds a replica
    workspace from the picklable spec plus its own copy of the client
    shards.  Steady state, per round: the parent writes the broadcast
    vector into shared memory once, submits ``(client_id, rng_state,
    hyperparams)`` tuples, and workers stream ``ClientUpdate``s back as
    they finish; the parent restores each returned RNG state into its
    own client object and re-aligns results with the participant order.

    Clients are snapshotted into the workers when the pool starts;
    swapping ``trainer.clients`` entries afterwards cannot reach the
    workers, so ``run_round`` refuses participants that are not the
    exact objects it was bound to (re-``bind`` to pick up a changed
    federation — binding tears any running pool down first).
    """

    name = "process"

    def __init__(
        self, n_workers: int = 0, mp_method: Optional[str] = None
    ) -> None:
        self.n_workers = resolve_worker_count(n_workers)
        self.mp_method = mp_method
        self._spec: Optional[WorkspaceSpec] = None
        self._clients: Optional[List[FLClient]] = None
        self._by_id: Dict[int, FLClient] = {}
        self._n_params: Optional[int] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shm: Optional[shared_memory.SharedMemory] = None
        self.tracer = NULL_TRACER

    def bind(self, workspace, clients, spec=None, tracer=None) -> None:
        self.close()
        self._spec = spec or WorkspaceSpec.from_workspace(workspace)
        self._clients = list(clients)
        self._by_id = {c.client_id: c for c in self._clients}
        self._n_params = workspace.n_params
        self.tracer = tracer or NULL_TRACER

    def _ensure_started(self) -> None:
        if self._pool is not None:
            return
        if self._spec is None or self._n_params is None:
            raise RuntimeError("executor not bound to a trainer")
        self._shm = shared_memory.SharedMemory(
            create=True, size=self._n_params * np.dtype(np.float64).itemsize
        )
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=get_context(self.mp_method),
            initializer=_init_worker,
            initargs=(self._spec, self._clients, self._shm.name, self._n_params),
        )
        self.tracer.metrics.counter("runtime.executor.pool_starts").inc()

    def run_round(self, plan, participants):
        self._ensure_started()
        tracer = self.tracer
        # The workers hold a snapshot of the bound client objects, so a
        # participant that is not that exact object (new id, or an entry
        # swapped in after binding) would silently run stale code/data.
        for client in participants:
            if self._by_id.get(client.client_id) is not client:
                error = ClientExecutionError(
                    client.client_id,
                    f"client {client.client_id} is not among the objects "
                    "this process pool was started with; re-bind() the "
                    "executor to pick up the changed federation",
                    iteration=plan.iteration,
                    backend=self.name,
                    cause_type="IdentityMismatch",
                )
                _trace_client_error(tracer, error)
                raise error
        shm_start = monotonic()
        broadcast = np.ndarray(
            (self._n_params,), dtype=np.float64, buffer=self._shm.buf
        )
        np.copyto(broadcast, np.asarray(plan.global_params, dtype=np.float64))
        del broadcast  # release the exported shm buffer view immediately
        _emit_broadcast_span(
            tracer, plan, rt={"shm": True, "dur": monotonic() - shm_start}
        )
        round_start = monotonic()
        futures = [
            self._pool.submit(
                _run_client_task,
                client.client_id,
                client.rng_state(),
                plan.lr,
                plan.local_epochs,
                plan.batch_size,
                monotonic(),
            )
            for client in participants
        ]
        payloads = _collect_in_order(
            futures, participants,
            plan=plan, backend=self.name, tracer=tracer, started=round_start,
        )
        results: List[ClientUpdate] = []
        for client, (result, rng_state, timing) in zip(participants, payloads):
            client.set_rng_state(rng_state)
            _emit_task_span(tracer, plan, client, timing)
            results.append(result)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None

    def __repr__(self) -> str:
        return f"ProcessExecutor(n_workers={self.n_workers})"


def _emit_broadcast_span(tracer, plan: RoundPlan, rt: Dict[str, Any]) -> None:
    """The per-round parameter broadcast as an already-timed span.

    For serial/thread backends the broadcast is a shared read-only
    array (``dur`` 0); the process backend measures its shared-memory
    copy.  ``shm``/``dur`` are runtime data — the deterministic attrs
    are the same on every backend.
    """
    if not tracer.enabled:
        return
    tracer.record_span(
        "broadcast",
        attrs={
            "iteration": plan.iteration,
            "n_params": int(np.asarray(plan.global_params).size),
        },
        rt=rt,
    )


def _emit_task_span(
    tracer, plan: RoundPlan, client: FLClient, timing: Tuple[float, float, str]
) -> None:
    """Replay one client task as a ``client_compute`` span.

    Executors time tasks wherever the work physically ran, then call
    this on the coordinating thread in participant order, so the span
    sequence is deterministic while ``rt`` keeps the real queue wait,
    duration and worker identity.

    Per-client spans are head-sampled (``FLConfig.trace_sample``):
    every task still feeds the runtime histogram and the round rollup,
    but only sampled (round, client) pairs emit an individual span.
    """
    if not tracer.enabled:
        return
    queue_wait, dur, worker = timing
    tracer.metrics.histogram("runtime.executor.queue_wait").observe(queue_wait)
    rollup = tracer.rollup
    if rollup is not None:
        rollup.observe_task_rt(client.client_id, dur, queue_wait)
    if not tracer.span_sampled(plan.iteration, client.client_id):
        return
    tracer.record_span(
        "client_compute",
        attrs={"iteration": plan.iteration, "client_id": client.client_id},
        rt={"queue_wait": queue_wait, "dur": dur, "worker": worker},
    )


def _trace_client_error(tracer, error: ClientExecutionError) -> None:
    """Emit a failure as a ``client_error`` point event."""
    if not tracer.enabled:
        return
    tracer.event(
        "client_error",
        attrs={
            "client_id": error.client_id,
            "iteration": error.iteration,
            "error": error.cause_type or type(error).__name__,
        },
        rt={"elapsed": error.elapsed_s, "backend": error.backend},
    )


def _client_failure(
    exc: BaseException,
    client: FLClient,
    plan: Optional[RoundPlan],
    backend: str,
    elapsed: Optional[float],
    tracer,
) -> ClientExecutionError:
    """Wrap a client failure with its structured context + trace event."""
    error = ClientExecutionError(
        client.client_id,
        f"client {client.client_id} failed during local "
        f"computation: {type(exc).__name__}: {exc}",
        iteration=plan.iteration if plan is not None else None,
        backend=backend,
        elapsed_s=elapsed,
        cause_type=type(exc).__name__,
    )
    _trace_client_error(tracer, error)
    return error


def _collect_in_order(
    futures: Sequence[Future],
    participants: Sequence[FLClient],
    plan: Optional[RoundPlan] = None,
    backend: str = "?",
    tracer=NULL_TRACER,
    started: Optional[float] = None,
) -> List[Any]:
    """Resolve futures in participant order, naming the failing client.

    Any failure — an exception raised inside a client's local training
    or a worker process dying outright (``BrokenProcessPool``) — is
    re-raised as :class:`ClientExecutionError` carrying the client id
    plus round/backend/elapsed context, so a crashed worker surfaces
    immediately instead of hanging the round.  Remaining futures are
    cancelled best-effort.
    """
    results: List[Any] = []
    for client, future in zip(participants, futures):
        try:
            results.append(future.result())
        except Exception as exc:
            for pending in futures:
                pending.cancel()
            elapsed = monotonic() - started if started is not None else None
            raise _client_failure(
                exc, client, plan, backend, elapsed, tracer
            ) from exc
    return results


def make_executor(
    backend: Union[str, ClientExecutor],
    n_workers: int = 0,
    mp_method: Optional[str] = None,
) -> ClientExecutor:
    """Build an executor from a backend name (or pass one through)."""
    if isinstance(backend, ClientExecutor):
        return backend
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(n_workers)
    if backend == "process":
        return ProcessExecutor(n_workers, mp_method=mp_method)
    if backend == "batched":
        # In-process and cohort-stacked: worker knobs do not apply.
        return BatchedExecutor()
    raise ValueError(
        f"unknown executor backend {backend!r}; choices: {EXECUTOR_BACKENDS}"
    )
