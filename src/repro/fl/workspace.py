"""A reusable model + loss + optimizer workspace.

Simulating hundreds of clients does not require hundreds of model
copies: clients only differ in their data and the flat parameter vector
they start from.  The trainer owns a single workspace and loads each
client's (or the server's) parameters into it on demand.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.nn.losses import Loss
from repro.nn.module import Module
from repro.nn.optimizers import Optimizer, SGD
from repro.nn.serialization import (
    assign_flat_parameters,
    flatten_parameters,
    parameter_count,
)

__all__ = ["ModelWorkspace"]

MetricFn = Callable[[np.ndarray, np.ndarray], float]


class ModelWorkspace:
    """Bundles a model with its loss and optimizer behind a flat-vector API."""

    def __init__(
        self,
        model: Module,
        loss: Loss,
        optimizer: Optional[Optimizer] = None,
        metric: Optional[MetricFn] = None,
    ) -> None:
        self.model = model
        self.loss = loss
        self.optimizer = optimizer or SGD(model.parameters(), lr=0.05)
        self.metric = metric
        self.n_params = parameter_count(model)

    def get_flat(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Current parameters as a flat vector (a copy).

        ``out=`` writes into a preallocated float64 vector instead of
        allocating one — the per-client hot path in the executor uses
        this to avoid an extra ``n_params`` allocation per call.
        """
        return flatten_parameters(self.model, out=out)

    def load_flat(self, flat: np.ndarray) -> None:
        """Overwrite the model parameters from a flat vector."""
        assign_flat_parameters(self.model, flat)

    def train_step(self, x: np.ndarray, y: np.ndarray, lr: float) -> float:
        """One SGD step on a minibatch; returns the batch loss.

        Uses ``head_backward``: the model's input gradient is dead
        work here, so head layers that support it skip computing it
        (parameter gradients — and therefore the step — are
        bitwise-unchanged).
        """
        self.model.zero_grad()
        out = self.model.forward(x, training=True)
        loss_value = self.loss.forward(out, y)
        self.model.head_backward(self.loss.backward())
        self.optimizer.step(lr=lr)
        return loss_value

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Tuple[float, float]:
        """(mean loss, metric) over ``(x, y)`` without touching parameters.

        The metric is NaN when the workspace has none configured.
        """
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("evaluation set must be non-empty and aligned")
        losses = []
        metrics = []
        weights = []
        for start in range(0, len(x), batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            out = self.model.forward(xb, training=False)
            losses.append(self.loss.forward(out, yb))
            if self.metric is not None:
                metrics.append(self.metric(out, yb))
            weights.append(len(xb))
        w = np.asarray(weights, dtype=float)
        w /= w.sum()
        mean_loss = float(np.dot(losses, w))
        mean_metric = float(np.dot(metrics, w)) if metrics else float("nan")
        return mean_loss, mean_metric
