"""Task relationship matrices.

MOCHA regularises the task weight matrix W (features x tasks) with
(lambda/2) tr(W Omega^{-1} W^T), where the relationship matrix Omega is
re-estimated from W itself by the closed form of Zhang & Yeung's
multi-task relationship learning:

    Omega = (W^T W)^{1/2} / tr((W^T W)^{1/2}).

A small ridge keeps the inverse well conditioned early in training when
W is near zero.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

__all__ = ["inverse_relationship", "relationship_matrix", "task_similarity"]


def relationship_matrix(weights: np.ndarray, ridge: float = 1e-3) -> np.ndarray:
    """Omega from the current task weights ``(n_features, n_tasks)``.

    Returns a symmetric positive-definite ``(n_tasks, n_tasks)`` matrix
    with unit trace (up to the ridge).
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {w.shape}")
    n_tasks = w.shape[1]
    gram = w.T @ w + ridge * np.eye(n_tasks)
    root = linalg.sqrtm(gram)
    root = np.real_if_close(root)
    if np.iscomplexobj(root):
        root = root.real
    trace = float(np.trace(root))
    if trace <= 0:
        raise ValueError("degenerate task weights: non-positive trace")
    omega = root / trace
    # Symmetrise against sqrtm round-off.
    return (omega + omega.T) / 2.0


def inverse_relationship(omega: np.ndarray, ridge: float = 1e-6) -> np.ndarray:
    """Omega^{-1} with a ridge for numerical safety."""
    omega = np.asarray(omega, dtype=float)
    n = omega.shape[0]
    if omega.shape != (n, n):
        raise ValueError("omega must be square")
    return np.linalg.inv(omega + ridge * np.eye(n))


def task_similarity(weights: np.ndarray) -> np.ndarray:
    """Cosine-similarity matrix between task weight columns.

    A human-readable companion to Omega: entries near +1 are strongly
    related tasks, near -1 the anti-aligned outliers of paper Fig. 6.
    Zero-norm columns (untrained tasks) yield zero similarity rows.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise ValueError(f"weights must be 2-D, got shape {w.shape}")
    norms = np.linalg.norm(w, axis=0)
    safe = np.where(norms > 0, norms, 1.0)
    unit = w / safe[None, :]
    sim = unit.T @ unit
    sim[norms == 0, :] = 0.0
    sim[:, norms == 0] = 0.0
    return sim
