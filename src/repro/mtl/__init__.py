"""MOCHA-style federated multi-task learning (paper Sec. V-B).

MOCHA (Smith et al., NIPS'17) trains one model per client plus a task
relationship matrix.  CMFL generalises to it because the global state
is still an aggregation of local updates: each client judges its column
update against the federation's previous update tendency before
uploading.  This package implements the alternating scheme -- local
regularised updates of per-task weights, closed-form relationship
matrix refresh -- with the same upload-policy interface as
:mod:`repro.fl`.
"""

from repro.mtl.relationship import relationship_matrix, task_similarity
from repro.mtl.mocha import MTLConfig, MochaTrainer

__all__ = ["relationship_matrix", "task_similarity", "MTLConfig", "MochaTrainer"]
