"""The federated multi-task trainer (MOCHA-style) with the CMFL hook.

MOCHA trains separate-but-related per-client models.  We realise the
same structure with the standard shared-base decomposition of federated
MTL: task k's model is ``w_k = b + v_k`` where the *base* ``b`` is the
globally aggregated component (the "global matrix" CMFL's extension
reasons about) and the *offset* ``v_k`` is private to the client and
never communicated.  One synchronous round:

1. the server broadcasts the base b and the previous aggregate base
   update (the CMFL feedback);
2. client k refreshes its private offset against the new base, then
   runs E local epochs of minibatch SGD on its logistic loss from
   ``b + v_k``;
3. the upload policy judges the client's local drift u_k against the
   federation's previous tendency (paper Sec. IV-B "Extensions");
4. the server moves the base by the mean of the uploaded drifts.

Outlier clients (anti-aligned tasks) produce drifts that point against
the federation: uploading them pollutes the shared base for everyone,
which is exactly why filtering them both saves communication *and*
improves mean accuracy (the paper's Fig. 5/6 finding).  The task
relationship matrix of :mod:`repro.mtl.relationship` is maintained for
analysis (task-similarity reporting and the relationship feedback mode).

Accuracy is the average per-task test accuracy of ``b + v_k``,
matching the paper's Fig. 5 y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.policy import PolicyContext, UploadPolicy
from repro.data.har import TaskData
from repro.fl.accounting import CommunicationLedger
from repro.fl.history import RoundRecord, RunHistory
from repro.mtl.relationship import relationship_matrix
from repro.nn.activations import sigmoid
from repro.utils.rng import RngLike, child_rngs

__all__ = ["MTLConfig", "MochaTrainer"]

FEEDBACK_MODES = ("mean", "relationship")


@dataclass
class MTLConfig:
    """Hyper-parameters of a federated MTL run (paper Sec. V-B setup).

    ``personal_retention`` is the fraction of a task's residual from the
    shared base that is kept as its private offset each round (0 makes
    every task use the base alone; 1 keeps the full residual).
    """

    rounds: int = 100
    local_epochs: int = 10
    batch_size: int = 3
    lr: float = 1e-4
    personal_retention: float = 0.5
    omega_refresh_every: int = 5
    eval_every: int = 1
    feedback_mode: str = "mean"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.local_epochs < 1 or self.batch_size < 1:
            raise ValueError("rounds, local_epochs and batch_size must be >= 1")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= self.personal_retention <= 1.0:
            raise ValueError("personal_retention must be in [0, 1]")
        if self.omega_refresh_every < 1 or self.eval_every < 1:
            raise ValueError("refresh/eval cadences must be >= 1")
        if self.feedback_mode not in FEEDBACK_MODES:
            raise ValueError(
                f"feedback_mode must be one of {FEEDBACK_MODES}, "
                f"got {self.feedback_mode!r}"
            )


def _logistic_gradient(w: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Mean gradient of the logistic loss for one minibatch.

    ``w`` carries a trailing bias entry; the bias column is appended to
    ``x`` here.
    """
    xb = np.hstack([x, np.ones((x.shape[0], 1))])
    logits = xb @ w
    residual = sigmoid(logits) - y
    return xb.T @ residual / x.shape[0]


class MochaTrainer:
    """Runs federated multi-task learning under an upload policy."""

    def __init__(
        self,
        tasks: Sequence[TaskData],
        policy: UploadPolicy,
        config: MTLConfig,
        rng: RngLike = None,
    ) -> None:
        if not tasks:
            raise ValueError("need at least one task")
        self.tasks = list(tasks)
        self.policy = policy
        self.config = config
        n_features = tasks[0].train.x.shape[1]
        for t in self.tasks:
            if t.train.x.shape[1] != n_features:
                raise ValueError("all tasks must share the feature dimension")
        self.n_features = n_features
        self.n_tasks = len(self.tasks)
        dim = n_features + 1  # +1 bias
        self.base = np.zeros(dim)
        self.offsets = np.zeros((dim, self.n_tasks))
        self._last_local = np.zeros((dim, self.n_tasks))
        self._have_locals = False
        self._prev_base_update = np.zeros(dim)
        self._prev_column_updates = np.zeros((dim, self.n_tasks))
        self._has_feedback = False
        self.omega = np.eye(self.n_tasks) / self.n_tasks
        self._rngs = child_rngs(config.seed if rng is None else rng, self.n_tasks)
        self.ledger = CommunicationLedger(n_params=dim)
        self.history = RunHistory(policy_name=policy.name)

    # ------------------------------------------------------------------
    # per-client pieces
    # ------------------------------------------------------------------
    def task_weights(self, task_idx: int) -> np.ndarray:
        """The effective model of task ``task_idx``: base + private offset."""
        return self.base + self.offsets[:, task_idx]

    def _refresh_offset(self, task_idx: int) -> None:
        """Keep a retained fraction of the task's residual from the base."""
        if not self._have_locals:
            return
        residual = self._last_local[:, task_idx] - self.base
        self.offsets[:, task_idx] = self.config.personal_retention * residual

    def _local_update(self, task_idx: int) -> np.ndarray:
        """E epochs of minibatch SGD from ``b + v_k``; returns the drift."""
        cfg = self.config
        task = self.tasks[task_idx]
        start = self.task_weights(task_idx)
        w = start.copy()
        for _ in range(cfg.local_epochs):
            for xb, yb in task.train.batches(cfg.batch_size, rng=self._rngs[task_idx]):
                w -= cfg.lr * _logistic_gradient(w, xb, yb.astype(float))
        self._last_local[:, task_idx] = w
        return w - start

    def _feedback_for(self, task_idx: int) -> np.ndarray:
        """The global tendency this client compares its drift against."""
        if not self._has_feedback:
            return np.zeros(self.n_features + 1)
        if self.config.feedback_mode == "mean":
            return self._prev_base_update
        # Relationship mode: weight the previous per-task drifts by this
        # task's (non-negative) learned similarity to each other task.
        weights = np.maximum(self.omega[task_idx].copy(), 0.0)
        weights[task_idx] = 0.0
        if weights.sum() == 0:
            return self._prev_base_update
        weights = weights / weights.sum()
        return self._prev_column_updates @ weights

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(self) -> float:
        """Average per-task test accuracy of ``b + v_k``."""
        accs = []
        for k, task in enumerate(self.tasks):
            xb = np.hstack([task.test.x, np.ones((len(task.test), 1))])
            pred = (xb @ self.task_weights(k) > 0).astype(int)
            accs.append(float(np.mean(pred == task.test.y)))
        return float(np.mean(accs))

    # ------------------------------------------------------------------
    # the synchronous round
    # ------------------------------------------------------------------
    def run_round(self, t: int) -> RoundRecord:
        uploads: List[int] = []
        skipped: List[int] = []
        scores: List[float] = []
        threshold = 0.0
        pending: List[tuple] = []
        column_updates = np.zeros_like(self.offsets)
        for k in range(self.n_tasks):
            self._refresh_offset(k)
            update = self._local_update(k)
            column_updates[:, k] = update
            ctx = PolicyContext(
                iteration=t,
                global_params=self.task_weights(k),
                global_update_estimate=self._feedback_for(k),
                client_id=k,
            )
            decision = self.policy.decide(update, ctx)
            scores.append(decision.score)
            threshold = decision.threshold
            if decision.upload:
                pending.append((k, update))
                uploads.append(k)
            else:
                skipped.append(k)
        self._have_locals = True

        if pending:
            base_update = np.mean([u for _, u in pending], axis=0)
            self.base += base_update
            self._prev_base_update = base_update
            self._prev_column_updates = column_updates
            self._has_feedback = True
        if t % self.config.omega_refresh_every == 0:
            stacked = self.base[:, None] + self.offsets
            self.omega = relationship_matrix(stacked)

        self.ledger.record_round(uploads, skipped)
        record = RoundRecord(
            iteration=t,
            n_clients=self.n_tasks,
            n_uploaded=len(uploads),
            accumulated_rounds=self.ledger.accumulated_rounds,
            total_bytes=self.ledger.total_bytes,
            lr=self.config.lr,
            mean_train_loss=float("nan"),
            mean_score=float(np.mean(scores)),
            threshold=threshold,
            uploaded_ids=uploads,
        )
        if t % self.config.eval_every == 0:
            record.test_metric = self.evaluate()
        self.history.append(record)
        return record

    def run(self, rounds: Optional[int] = None) -> RunHistory:
        total = self.config.rounds if rounds is None else rounds
        if total < 1:
            raise ValueError("rounds must be >= 1")
        start = len(self.history) + 1
        for t in range(start, start + total):
            self.run_round(t)
        return self.history
