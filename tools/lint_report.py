#!/usr/bin/env python
"""Emit a JSON rule-hit summary of ``repro.lint`` for BENCH tracking.

Usage::

    PYTHONPATH=src python tools/lint_report.py [paths...] [-o report.json]

The payload records, per rule, how many diagnostics fired and in how
many distinct files, plus the scanned-file count — a longitudinal
signal for how clean the tree stays as it grows.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import Linter, load_config  # noqa: E402
from repro.lint.reporting import summarize  # noqa: E402
from repro.lint.rules import DEFAULT_RULES  # noqa: E402
from repro.utils.atomic_io import atomic_write_text  # noqa: E402


def build_report(paths: list[str]) -> dict:
    config = load_config(REPO_ROOT)
    linter = Linter(config=config)
    files = list(linter.iter_files(paths))
    violations = linter.lint_paths(paths)
    files_by_rule: dict[str, set] = defaultdict(set)
    for violation in violations:
        files_by_rule[violation.rule].add(violation.path)
    return {
        "paths": paths,
        "files_scanned": len(files),
        "rules": [
            {
                "name": rule.name,
                "hits": sum(1 for v in violations if v.rule == rule.name),
                "files": len(files_by_rule.get(rule.name, ())),
                "severity": linter.settings_for(rule).severity,
            }
            for rule in DEFAULT_RULES
        ],
        "summary": summarize(violations),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=[str(REPO_ROOT / "src" / "repro")]
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write the JSON here instead of stdout",
    )
    args = parser.parse_args(argv)
    report = build_report(list(args.paths))
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        atomic_write_text(args.output, text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
