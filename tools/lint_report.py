#!/usr/bin/env python
"""Emit a JSON rule-hit summary of ``repro.lint`` for BENCH tracking.

Usage::

    PYTHONPATH=src python tools/lint_report.py [paths...] [-o report.json]
    PYTHONPATH=src python tools/lint_report.py --cache /tmp/lint_cache.json

The v2 payload runs the whole-program analyzer (per-file rules plus the
flow rules) and records, per rule, how many diagnostics fired and in
how many distinct files, plus the scanned-file count, the cache hit
rate and the analysis wall time — a longitudinal signal for how clean
the tree stays and how fast the analyzer keeps up as it grows.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint import ProjectAnalyzer, load_config  # noqa: E402
from repro.lint.flow_rules import PROJECT_RULES  # noqa: E402
from repro.lint.reporting import summarize  # noqa: E402
from repro.lint.rules import DEFAULT_RULES  # noqa: E402
from repro.utils.atomic_io import atomic_write_text  # noqa: E402

SCHEMA = "repro-lint-report/v2"


def build_report(paths: list[str], cache: Path | None, jobs: int) -> dict:
    config = load_config(REPO_ROOT)
    analyzer = ProjectAnalyzer(config=config, cache_path=cache, jobs=jobs)
    result = analyzer.analyze(paths)
    violations = result.violations
    files_by_rule: dict[str, set] = defaultdict(set)
    for violation in violations:
        files_by_rule[violation.rule].add(violation.path)

    def _entry(name: str, severity: str, kind: str) -> dict:
        return {
            "name": name,
            "kind": kind,
            "hits": sum(1 for v in violations if v.rule == name),
            "files": len(files_by_rule.get(name, ())),
            "severity": severity,
        }

    rules = [
        _entry(
            rule.name,
            config.rule_settings(
                rule.name, rule.default_severity, rule.default_paths
            ).severity,
            "file",
        )
        for rule in DEFAULT_RULES
    ]
    rules.extend(
        _entry(
            rule.name,
            config.rule_settings(
                rule.name, rule.default_severity, rule.default_paths
            ).severity,
            "project",
        )
        for rule in PROJECT_RULES
    )
    stats = result.stats
    lookups = stats["cache_hits"] + stats["cache_misses"]
    return {
        "schema": SCHEMA,
        "paths": paths,
        "files_scanned": stats["files"],
        "rules": rules,
        "summary": summarize(violations),
        "analysis": {
            "jobs": stats["jobs"],
            "wall_time_s": stats["wall_time_s"],
            "cache_hits": stats["cache_hits"],
            "cache_misses": stats["cache_misses"],
            "cache_hit_rate": (
                stats["cache_hits"] / lookups if lookups else 0.0
            ),
            "flow_reused": stats["flow_reused"],
            "phase2_ran": stats["phase2_ran"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=[str(REPO_ROOT / "src" / "repro")]
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write the JSON here instead of stdout",
    )
    parser.add_argument(
        "--cache", type=Path, default=None,
        help="incremental analysis cache (reported in the hit rate)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2,
        help="parallel workers for the per-file phase (default: 2)",
    )
    args = parser.parse_args(argv)
    report = build_report(list(args.paths), args.cache, args.jobs)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        atomic_write_text(args.output, text + "\n")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
