#!/usr/bin/env python
"""Diff two round-throughput baselines; fail on throughput regressions.

Compares clients/sec per (workload, backend) between two
``BENCH_timing.json`` files written by ``tools/bench_timing.py`` and
exits non-zero when any pair regressed by more than the threshold
(default 20%).  Pairs present in only one file are reported but never
fail the comparison.

Usage::

    python tools/bench_timing.py --out /tmp/after.json
    python tools/bench_compare.py BENCH_timing.json /tmp/after.json
    python tools/bench_compare.py before.json after.json --threshold 0.1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _throughputs(payload):
    """Flatten a timing payload into {(workload, backend): clients/sec}."""
    if payload.get("schema") != "repro-bench-timing/v1":
        raise ValueError(
            f"not a repro-bench-timing/v1 payload (schema={payload.get('schema')!r})"
        )
    out = {}
    for workload, data in payload["workloads"].items():
        for backend, entry in data["backends"].items():
            out[(workload, backend)] = float(entry["clients_per_sec"])
    return out


def compare(before, after, threshold):
    """Return (report_lines, regressions) for two timing payloads."""
    base = _throughputs(before)
    new = _throughputs(after)
    lines = []
    regressions = []
    for key in sorted(set(base) | set(new)):
        workload, backend = key
        label = f"{workload}/{backend}"
        if key not in base:
            lines.append(f"  {label:<24} only in AFTER ({new[key]:.2f} clients/s)")
            continue
        if key not in new:
            lines.append(f"  {label:<24} only in BEFORE ({base[key]:.2f} clients/s)")
            continue
        delta = (new[key] - base[key]) / base[key]
        verdict = "ok"
        if delta < -threshold:
            verdict = "REGRESSION"
            regressions.append((label, base[key], new[key], delta))
        lines.append(
            f"  {label:<24} {base[key]:>9.2f} -> {new[key]:>9.2f} clients/s "
            f"({delta:+.1%}) {verdict}"
        )
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", type=Path, help="baseline BENCH_timing.json")
    parser.add_argument("after", type=Path, help="candidate BENCH_timing.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="max tolerated fractional throughput drop (default: 0.2)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    before = json.loads(args.before.read_text())
    after = json.loads(args.after.read_text())
    lines, regressions = compare(before, after, args.threshold)

    print(f"throughput comparison (threshold {args.threshold:.0%} drop):")
    print("\n".join(lines))
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} pair(s) regressed by more than "
            f"{args.threshold:.0%}"
        )
        return 1
    print("\nOK: no pair regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
