#!/usr/bin/env python
"""Diff two round-throughput baselines; fail on throughput regressions.

Compares clients/sec per (workload, backend) between two
``BENCH_timing.json`` files written by ``tools/bench_timing.py`` and
exits non-zero when any pair regressed by more than the threshold
(default 20%).  Clients/sec derives from the **median** per-round
sample (see :mod:`repro.experiments.timing`), so one noisy round in
either baseline cannot flip the gate.  Pairs present in only one file
are reported but never fail the comparison.  Further one-sided gates
run against the candidate: the lint warm-cache speedup, the batched
backend's digits_cnn speedup + digest identity, and — when ``--scale``
points at a ``BENCH_scale.json`` from ``tools/bench_scale.py`` — the
population-scale peak-RSS growth gate (``--max-rss-growth``) plus the
traced-vs-untraced peak-RSS ratio (``--max-traced-rss``).  The
observability tax is gated one-sided as well: head-sampled tracing
must cost no more than ``--max-obs-overhead`` clients/sec vs tracing
off, with bitwise-identical history digests across all modes.

Usage::

    python tools/bench_timing.py --out /tmp/after.json
    python tools/bench_compare.py BENCH_timing.json /tmp/after.json
    python tools/bench_compare.py before.json after.json --threshold 0.1
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def _throughputs(payload):
    """Flatten a timing payload into {(workload, backend): clients/sec}."""
    if payload.get("schema") != "repro-bench-timing/v1":
        raise ValueError(
            f"not a repro-bench-timing/v1 payload (schema={payload.get('schema')!r})"
        )
    out = {}
    for workload, data in payload["workloads"].items():
        for backend, entry in data["backends"].items():
            out[(workload, backend)] = float(entry["clients_per_sec"])
    return out


def compare(before, after, threshold):
    """Return (report_lines, regressions) for two timing payloads."""
    base = _throughputs(before)
    new = _throughputs(after)
    lines = []
    regressions = []
    for key in sorted(set(base) | set(new)):
        workload, backend = key
        label = f"{workload}/{backend}"
        if key not in base:
            lines.append(f"  {label:<24} only in AFTER ({new[key]:.2f} clients/s)")
            continue
        if key not in new:
            lines.append(f"  {label:<24} only in BEFORE ({base[key]:.2f} clients/s)")
            continue
        delta = (new[key] - base[key]) / base[key]
        verdict = "ok"
        if delta < -threshold:
            verdict = "REGRESSION"
            regressions.append((label, base[key], new[key], delta))
        lines.append(
            f"  {label:<24} {base[key]:>9.2f} -> {new[key]:>9.2f} clients/s "
            f"({delta:+.1%}) {verdict}"
        )
    return lines, regressions


def check_batched_speedup(before, after, min_speedup, workload="digits_cnn"):
    """Gate the batched backend: fast enough AND bitwise-identical.

    The throughput half is an **introduction gate**: when the BEFORE
    baseline predates the batched backend (no batched entry), the
    candidate's batched clients/sec must be at least ``min_speedup``
    times the serial clients/sec of that pre-vectorization baseline —
    the reference ROADMAP's "Nx serial clients/sec" target is defined
    against.  The candidate's *own* serial entry is deliberately not
    the reference: bitwise-identical digests force both backends
    through the same kernels, so kernel work that speeds the batched
    path speeds serial too and the same-file ratio (reported as
    ``speedup_vs_serial``) structurally undersells the win.  Once a
    baseline carries a batched entry the introduction proof is banked
    and the ordinary drop gate guards batched throughput; this check
    then only enforces digest identity.

    Digest identity between the candidate's serial and batched runs is
    enforced whenever both entries exist.  A candidate without a
    batched entry (partial sweep) passes — only full candidate
    baselines are gated.
    """
    backends = (
        after.get("workloads", {}).get(workload, {}).get("backends", {})
    )
    serial, batched = backends.get("serial"), backends.get("batched")
    if serial is None or batched is None:
        return [
            f"  {workload} serial/batched pair absent in AFTER (skipped)"
        ], False
    identical = batched["history_digest"] == serial["history_digest"]
    digest_note = f"digests {'identical' if identical else 'DIFFER'}"
    base_backends = (
        before.get("workloads", {}).get(workload, {}).get("backends", {})
    )
    if "batched" in base_backends:
        line = (
            f"  {workload} batched already in BEFORE (drop gate guards "
            f"throughput), {digest_note}"
        )
        failed = not identical
        return [line + (" REGRESSION" if failed else " ok")], failed
    base_serial = base_backends.get("serial")
    if base_serial is None:
        return [
            f"  {workload} serial entry absent in BEFORE (skipped), "
            f"{digest_note}"
        ], not identical
    speedup = float(batched["clients_per_sec"]) / float(
        base_serial["clients_per_sec"]
    )
    line = (
        f"  {workload} batched {float(batched['clients_per_sec']):.2f} "
        f"clients/s = {speedup:.2f}x baseline serial "
        f"(minimum {min_speedup:.1f}x; same-file ratio "
        f"{float(batched['speedup_vs_serial']):.2f}x), {digest_note}"
    )
    failed = speedup < min_speedup or not identical
    return [line + (" REGRESSION" if failed else " ok")], failed


def check_lint_speedup(after, min_speedup):
    """Gate the whole-program lint warm-cache speedup.

    Returns (report_lines, failed).  A payload without a lint micro
    entry (older baseline) passes — only the candidate is gated.
    """
    lint = after.get("micro", {}).get("lint")
    if lint is None:
        return ["  lint micro entry absent in AFTER (skipped)"], False
    line = (
        f"  lint cold {lint['cold_s']:.2f}s -> warm {lint['warm_s']:.2f}s "
        f"({lint['speedup']:.1f}x, minimum {min_speedup:.1f}x)"
    )
    failed = float(lint["speedup"]) < min_speedup
    return [line + (" REGRESSION" if failed else " ok")], failed


def check_obs_overhead(after, max_overhead):
    """Gate the observability tax: sampled tracing must stay cheap.

    The ``obs_overhead`` micro (see
    :func:`repro.experiments.timing.time_obs_overhead`) runs the same
    store-backed population workload with tracing off, head-sampled,
    and full, and records the clients/sec cost of each traced mode
    relative to off.  The **sampled** mode is the one meant for
    production-scale runs, so it is the one gated: its overhead must
    not exceed ``max_overhead`` (default 5%).  Full tracing is
    reported but never gated — it is the debugging mode and priced
    accordingly.  Digest identity across all three modes is enforced
    too: observability must never change the run it observes.

    Returns (report_lines, failed).  A payload without the micro
    (older baseline) passes — only the candidate is gated.
    """
    obs = after.get("micro", {}).get("obs_overhead")
    if obs is None:
        return ["  obs_overhead micro entry absent in AFTER (skipped)"], False
    modes = obs["modes"]
    sampled = float(modes["sampled"]["overhead_vs_off"])
    full = float(modes["full"]["overhead_vs_off"])
    identical = bool(obs["identical_histories"])
    failed = sampled > max_overhead or not identical
    line = (
        f"  obs overhead ({int(obs['population']):,} pop): "
        f"sampled {sampled:+.1%} (max {max_overhead:+.1%}), "
        f"full {full:+.1%} (ungated); histories "
        f"{'identical' if identical else 'DIFFER'}"
    )
    return [line + (" REGRESSION" if failed else " ok")], failed


def check_async_digest(after, require=False):
    """Gate the async engine's S=0 sync-equivalence contract.

    The ``async_vs_sync`` micro (see
    :func:`repro.experiments.timing.time_async_vs_sync`) runs the same
    linear federation through the synchronous trainer and through the
    event engine at staleness bound 0, and records both history
    digests.  Whenever the micro is present, those digests must be
    identical — the engine's whole claim is that S=0 *is* the
    synchronous schedule, bit for bit.  The S=2 throughput figures
    (events/sec, staleness spread) are reported for context, never
    gated.

    With ``require=True`` (the ``--check-async-digest`` flag) a
    payload *without* the micro also fails: the candidate was supposed
    to prove the equivalence and didn't.  Without the flag an absent
    micro passes, so pre-async baselines keep comparing cleanly.

    Returns (report_lines, failed).
    """
    avs = after.get("micro", {}).get("async_vs_sync")
    if avs is None:
        if require:
            return [
                "  async_vs_sync micro entry absent in AFTER "
                "(required by --check-async-digest) REGRESSION"
            ], True
        return ["  async_vs_sync micro entry absent in AFTER (skipped)"], False
    identical = bool(avs["identical"])
    stale = avs.get("stale", {})
    line = (
        f"  async S=0 digest vs sync: "
        f"{'identical' if identical else 'DIFFER'}; "
        f"S={stale.get('staleness_bound')}: "
        f"{float(stale.get('events_per_sec', 0.0)):.0f} events/s, "
        f"staleness p50 {float(stale.get('staleness_p50', 0.0)):.1f} / "
        f"p99 {float(stale.get('staleness_p99', 0.0)):.1f} (ungated)"
    )
    failed = not identical
    return [line + (" REGRESSION" if failed else " ok")], failed


def check_traced_rss(scale, max_ratio):
    """Gate tracing's memory footprint at population scale.

    Points in ``BENCH_scale.json`` that carry a
    ``peak_rss_traced_kib`` column (a traced re-run of the same point
    in its own fresh process) must stay within ``max_ratio`` times the
    tracing-off RSS of that point.  The rollup/sampling design's whole
    claim is constant-memory observability, so a traced 100k-client
    run at 2x the untraced RSS means per-client retention crept back
    in.

    Returns (report_lines, failed).  Points without the column (older
    sweep) are skipped.
    """
    points = scale.get("points", {})
    traced = [
        p for p in points.values() if p.get("peak_rss_traced_kib") is not None
    ]
    if not traced:
        return ["  no traced-RSS columns in scale payload (skipped)"], False
    lines = []
    failed = False
    for point in sorted(traced, key=lambda p: int(p["population"])):
        ratio = float(point["peak_rss_traced_kib"]) / float(
            point["peak_rss_kib"]
        )
        bad = ratio > max_ratio
        failed = failed or bad
        lines.append(
            f"  population {int(point['population']):>9,}: traced rss "
            f"{float(point['peak_rss_traced_kib']) / 1024:8.1f} MiB = "
            f"{ratio:5.2f}x tracing-off (max {max_ratio:.1f}x)"
            + (" REGRESSION" if bad else " ok")
        )
    return lines, failed


def check_scale_rss(scale, max_growth):
    """Gate the population-scale sweep: peak RSS must stay sublinear.

    ``scale`` is a ``BENCH_scale.json`` payload from
    ``tools/bench_scale.py``: each point records the peak RSS of a
    fresh process that federated a fixed cohort over one population
    size.  Every point's RSS must stay within ``max_growth`` times the
    smallest population's RSS — the store's promise is that pool size
    costs shard touches, not resident memory, so 100k (or 1M) clients
    at 10x the 1k-point RSS means O(population) state crept back in.

    Returns (report_lines, failed).
    """
    if scale.get("schema") != "repro-bench-scale/v1":
        raise ValueError(
            f"not a repro-bench-scale/v1 payload (schema={scale.get('schema')!r})"
        )
    points = scale.get("points", {})
    if len(points) < 2:
        return [
            f"  only {len(points)} scale point(s) recorded (skipped)"
        ], False
    by_pop = sorted(points.values(), key=lambda p: int(p["population"]))
    base = by_pop[0]
    base_rss = float(base["peak_rss_kib"])
    lines = []
    failed = False
    for point in by_pop[1:]:
        growth = float(point["peak_rss_kib"]) / base_rss
        bad = growth > max_growth
        failed = failed or bad
        lines.append(
            f"  population {int(point['population']):>9,}: "
            f"rss {float(point['peak_rss_kib']) / 1024:8.1f} MiB = "
            f"{growth:5.2f}x the {int(base['population']):,}-client base "
            f"(max {max_growth:.1f}x)"
            + (" REGRESSION" if bad else " ok")
        )
    return lines, failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", type=Path, help="baseline BENCH_timing.json")
    parser.add_argument("after", type=Path, help="candidate BENCH_timing.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="max tolerated fractional throughput drop (default: 0.2)",
    )
    parser.add_argument(
        "--min-lint-speedup",
        type=float,
        default=3.0,
        help="minimum warm-cache speedup for the whole-program lint "
        "micro-benchmark (default: 3.0)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=3.0,
        help="minimum digits_cnn clients/sec of the batched backend "
        "relative to the BEFORE baseline's serial entry when that "
        "baseline predates the batched backend, with identical "
        "history digests (default: 3.0)",
    )
    parser.add_argument(
        "--scale",
        type=Path,
        default=None,
        help="candidate BENCH_scale.json from tools/bench_scale.py; "
        "enables the peak-RSS growth gate",
    )
    parser.add_argument(
        "--max-rss-growth",
        type=float,
        default=10.0,
        help="max tolerated peak-RSS ratio of any scale point over the "
        "smallest-population point (default: 10.0)",
    )
    parser.add_argument(
        "--max-obs-overhead",
        type=float,
        default=0.05,
        help="max tolerated clients/sec cost of head-sampled tracing "
        "relative to tracing off, from the obs_overhead micro "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--check-async-digest",
        action="store_true",
        help="require the async_vs_sync micro in the candidate and "
        "fail unless its S=0 history digest matches the synchronous "
        "trainer's (digest identity is enforced whenever the micro "
        "is present, flag or not)",
    )
    parser.add_argument(
        "--max-traced-rss",
        type=float,
        default=2.0,
        help="max tolerated peak-RSS ratio of a traced scale point over "
        "its tracing-off twin (default: 2.0)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")
    if args.max_rss_growth < 1:
        parser.error("--max-rss-growth must be >= 1")
    if args.max_obs_overhead < 0:
        parser.error("--max-obs-overhead must be >= 0")
    if args.max_traced_rss < 1:
        parser.error("--max-traced-rss must be >= 1")

    before = json.loads(args.before.read_text())
    after = json.loads(args.after.read_text())
    lines, regressions = compare(before, after, args.threshold)
    lint_lines, lint_failed = check_lint_speedup(
        after, args.min_lint_speedup
    )
    batched_lines, batched_failed = check_batched_speedup(
        before, after, args.min_batched_speedup
    )
    obs_lines, obs_failed = check_obs_overhead(after, args.max_obs_overhead)
    async_lines, async_failed = check_async_digest(
        after, require=args.check_async_digest
    )
    if args.scale is not None:
        scale_payload = json.loads(args.scale.read_text())
        scale_lines, scale_failed = check_scale_rss(
            scale_payload, args.max_rss_growth
        )
        traced_lines, traced_failed = check_traced_rss(
            scale_payload, args.max_traced_rss
        )
    else:
        scale_lines, scale_failed = ["  no --scale payload (skipped)"], False
        traced_lines, traced_failed = ["  no --scale payload (skipped)"], False

    print(f"throughput comparison (threshold {args.threshold:.0%} drop):")
    print("\n".join(lines))
    print("incremental lint cache:")
    print("\n".join(lint_lines))
    print("batched backend:")
    print("\n".join(batched_lines))
    print("observability overhead:")
    print("\n".join(obs_lines))
    print("async engine:")
    print("\n".join(async_lines))
    print("population-scale peak RSS:")
    print("\n".join(scale_lines))
    print("population-scale traced RSS:")
    print("\n".join(traced_lines))
    if (
        regressions
        or lint_failed
        or batched_failed
        or obs_failed
        or async_failed
        or scale_failed
        or traced_failed
    ):
        failures = (
            len(regressions)
            + (1 if lint_failed else 0)
            + (1 if batched_failed else 0)
            + (1 if obs_failed else 0)
            + (1 if async_failed else 0)
            + (1 if scale_failed else 0)
            + (1 if traced_failed else 0)
        )
        print(
            f"\nFAIL: {failures} check(s) regressed beyond their threshold"
        )
        return 1
    print("\nOK: no pair regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
