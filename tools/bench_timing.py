#!/usr/bin/env python
"""Write the machine-readable round-throughput baseline.

Runs the timing sweep from :mod:`repro.experiments.timing` — every
execution backend on the digits-CNN and linear workloads, plus the
im2col and checkpoint save/restore micro-benchmarks — and atomically
writes ``BENCH_timing.json`` at the repo root.  Compare two baselines
with ``tools/bench_compare.py``.

Usage::

    python tools/bench_timing.py                     # full sweep, workers=4
    python tools/bench_timing.py --backends serial thread
    python tools/bench_timing.py --rounds 5 --out /tmp/after.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.timing import (  # noqa: E402
    DEFAULT_BACKENDS,
    format_report,
    run_timing,
    write_baseline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backends",
        nargs="+",
        default=list(DEFAULT_BACKENDS),
        choices=list(DEFAULT_BACKENDS),
        help="execution backends to time (default: all)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count for thread/process backends (default: 4)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed rounds per backend"
    )
    parser.add_argument(
        "--warmup", type=int, default=1, help="untimed warm-up rounds"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=["digits_cnn", "linear"],
        choices=["digits_cnn", "linear"],
        help="workloads to time (default: both)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_timing.json",
        help="output path (default: BENCH_timing.json at the repo root)",
    )
    args = parser.parse_args(argv)

    payload = run_timing(
        backends=args.backends,
        workers=args.workers,
        rounds=args.rounds,
        warmup=args.warmup,
        workloads=args.workloads,
    )
    write_baseline(payload, args.out)
    print(format_report(payload))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
