#!/usr/bin/env python
"""Write the population-scale baseline (``BENCH_scale.json``).

Sweeps the store-backed scale workload of
:mod:`repro.experiments.scale` over population sizes with a fixed
active cohort, recording peak RSS and clients/sec per point.  Each
point runs in a **fresh subprocess**: ``ru_maxrss`` is a
process-lifetime high-water mark, so measuring two populations in one
process would let the first point's peak mask the second's.  Each
point also gets a traced twin (head-sampled tracing at
``--trace-sample``, again in its own process) whose peak RSS lands in
the ``peak_rss_traced_kib`` column — the input to
``bench_compare.py --max-traced-rss``.

Usage::

    python tools/bench_scale.py                        # 1k/10k/100k/1M
    python tools/bench_scale.py --populations 1000 100000
    python tools/bench_scale.py --rounds 5 --out /tmp/scale.json
    python tools/bench_compare.py BENCH_timing.json after.json \\
        --scale BENCH_scale.json --max-rss-growth 10
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.scale import (  # noqa: E402
    DEFAULT_POPULATIONS,
    SCALE_SCHEMA,
    format_point,
)
from repro.utils.atomic_io import atomic_write_text  # noqa: E402


def measure_point(
    population: int,
    cohort: int,
    rounds: int,
    backend: str,
    seed: int,
    trace_sample: float = 0.0,
) -> dict:
    """One population point in a fresh interpreter (honest peak RSS).

    ``trace_sample > 0`` re-runs the same point with head-sampled
    tracing on, to price observability's memory footprint.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH"))
        if p
    )
    argv = [
        sys.executable,
        "-m",
        "repro.experiments.scale",
        "--population",
        str(population),
        "--cohort",
        str(cohort),
        "--rounds",
        str(rounds),
        "--backend",
        backend,
        "--seed",
        str(seed),
        "--json",
    ]
    if trace_sample > 0:
        argv += ["--trace", "--trace-sample", str(trace_sample)]
    proc = subprocess.run(argv, capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point population={population} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--populations",
        nargs="+",
        type=int,
        default=list(DEFAULT_POPULATIONS),
        help="population sizes to sweep (default: 1k 10k 100k 1M)",
    )
    parser.add_argument(
        "--cohort",
        type=int,
        default=100,
        help="active clients per round, fixed across the sweep (default: 100)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="rounds per point (default: 3)"
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="execution backend for every point (default: serial)",
    )
    parser.add_argument("--seed", type=int, default=31)
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.01,
        help="span-sampling rate for the traced twin of each point; "
        "0 disables the traced re-runs (default: 0.01)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_scale.json",
        help="output path (default: BENCH_scale.json at the repo root)",
    )
    args = parser.parse_args(argv)

    points = {}
    for population in sorted(args.populations):
        point = measure_point(
            population, args.cohort, args.rounds, args.backend, args.seed
        )
        if args.trace_sample > 0:
            # The traced twin gets its own fresh process so its
            # ru_maxrss is honest too; only the RSS column is kept.
            traced = measure_point(
                population,
                args.cohort,
                args.rounds,
                args.backend,
                args.seed,
                trace_sample=args.trace_sample,
            )
            point["peak_rss_traced_kib"] = traced["peak_rss_kib"]
            point["trace"] = traced["trace"]
        points[str(population)] = point
        print(format_point(point))

    base_pop = min(int(p) for p in points)
    base_rss = float(points[str(base_pop)]["peak_rss_kib"])
    rss_growth = {
        pop: float(point["peak_rss_kib"]) / base_rss
        for pop, point in points.items()
    }
    payload = {
        "schema": SCALE_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "config": {
            "cohort": args.cohort,
            "rounds": args.rounds,
            "backend": args.backend,
            "seed": args.seed,
            "base_population": base_pop,
        },
        "points": points,
        "rss_growth": rss_growth,
    }
    atomic_write_text(
        args.out, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    worst = max(rss_growth.values())
    print(
        f"peak-RSS growth vs {base_pop:,}-client base: worst "
        f"{worst:.2f}x across {len(points)} point(s)"
    )
    traced_ratios = [
        float(p["peak_rss_traced_kib"]) / float(p["peak_rss_kib"])
        for p in points.values()
        if p.get("peak_rss_traced_kib") is not None
    ]
    if traced_ratios:
        print(
            f"traced-RSS ratio (sample {args.trace_sample}): worst "
            f"{max(traced_ratios):.2f}x tracing off"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
