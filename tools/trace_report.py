#!/usr/bin/env python
"""Render a ``repro-trace/v1`` JSONL trace as a per-phase report.

A thin repo-root wrapper over ``python -m repro.obs report`` that can
additionally convert the trace's phase aggregates into a
``repro-bench-timing/v1`` payload for ``tools/bench_compare.py``.

Usage::

    python tools/trace_report.py trace.jsonl
    python tools/trace_report.py trace.jsonl --history run.jsonl
    python tools/trace_report.py trace.jsonl --bench-json /tmp/traced.json
    python tools/trace_report.py trace.jsonl --dashboard

The report includes per-round rollup and ``health.*`` finding tables
when the trace carries them; ``--dashboard`` appends the same ASCII
dashboard that ``python -m repro.obs watch`` renders live.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import (  # noqa: E402
    format_report,
    load_trace,
    render_dashboard,
    trace_to_timing_payload,
    validate_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="repro-trace/v1 .jsonl file")
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        help="RunHistory .jsonl to join per-round upload/byte columns",
    )
    parser.add_argument(
        "--bench-json",
        type=Path,
        default=None,
        help="also write the trace as a repro-bench-timing/v1 payload "
        "(input for tools/bench_compare.py)",
    )
    parser.add_argument(
        "--dashboard",
        action="store_true",
        help="also render the rollup/health dashboard "
        "(the one-shot form of `python -m repro.obs watch`)",
    )
    args = parser.parse_args(argv)

    events = load_trace(args.trace)
    problems = validate_trace(events)
    if problems:
        for problem in problems:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        return 1

    history = None
    if args.history is not None:
        from repro.fl.history import RunHistory  # noqa: E402

        history = RunHistory.from_jsonl(args.history)
    print(format_report(events, history=history))

    if args.dashboard:
        print()
        print(render_dashboard(events))

    if args.bench_json is not None:
        payload = trace_to_timing_payload(events)
        args.bench_json.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote bench-timing payload to {args.bench_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
