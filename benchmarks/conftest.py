"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures at the
``bench`` scale (set ``REPRO_SCALE=paper`` for the full-size runs) and
writes its report both to stdout and to ``benchmarks/reports/``.
"""

from pathlib import Path

REPORTS_DIR = Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/reports/."""
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
