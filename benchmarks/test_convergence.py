"""Bench: Theorem 1 -- empirical convergence of CMFL on a convex problem."""

from conftest import emit_report

from repro.experiments import convergence_check


def test_convergence_guarantee(benchmark):
    result = benchmark.pedantic(
        convergence_check.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("convergence_check", result.report())
    # Eq. (5): the time-average regret must decay.
    assert result.is_decaying
    # The Theorem-1 bound shape for 1/sqrt(t) schedules decays too.
    assert result.bound_shape[-1] < result.bound_shape[0]
