"""Bench: peak RSS and throughput vs population size (trimmed sweep).

A trimmed version of ``tools/bench_scale.py``: a fixed 100-client
cohort federates over 1k / 10k / 100k-client store-backed populations
and peak RSS must stay nearly flat.  Each point runs in a fresh
subprocess because ``ru_maxrss`` is a process-lifetime high-water mark
— measured in this process it would report whatever the heaviest
earlier benchmark touched.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import emit_report

from repro.experiments.scale import format_point

POPULATIONS = (1_000, 10_000, 100_000)
COHORT = 100
ROUNDS = 2


def _measure(population: int) -> dict:
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.experiments.scale",
            "--population",
            str(population),
            "--cohort",
            str(COHORT),
            "--rounds",
            str(ROUNDS),
            "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _sweep():
    return [_measure(p) for p in POPULATIONS]


def test_scale(benchmark):
    points = benchmark.pedantic(
        _sweep, rounds=1, iterations=1, warmup_rounds=0
    )
    base = points[0]
    worst = max(
        p["peak_rss_kib"] / base["peak_rss_kib"] for p in points
    )
    lines = [format_point(p) for p in points]
    lines.append(
        f"peak-RSS growth vs {base['population']:,}-client base: "
        f"worst {worst:.2f}x"
    )
    emit_report("scale", "\n".join(lines))
    for point in points:
        assert point["clients_per_sec"] > 0.0, point
        assert point["history_digest"], point
        # Laziness contract: the cohorts' draws bound the touched
        # shards; the population size must not.
        assert point["materialized_shards"] <= COHORT * ROUNDS + 1, point
    # The store promise (and the bench_compare --max-rss-growth gate):
    # resident memory follows touched state, not pool size.
    assert worst <= 10.0, (
        f"peak RSS grew {worst:.2f}x from "
        f"{base['population']:,} to {points[-1]['population']:,} clients"
    )
