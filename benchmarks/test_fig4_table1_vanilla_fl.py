"""Bench: Fig. 4 + Table I -- vanilla FL vs Gaia vs CMFL on both workloads.

The paper's headline result.  Assertions encode the *shape* of Table I:
CMFL beats Gaia and vanilla in communication rounds to target accuracy,
and Gaia's best configuration is close to vanilla at the high-accuracy
target (its magnitude threshold either stalls or filters nothing).
"""

from conftest import emit_report

from repro.experiments import fig4_table1


def test_fig4_digits(benchmark):
    result = benchmark.pedantic(
        fig4_table1.run,
        kwargs={"workloads": ["digits_cnn"]},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    comparison = result.comparisons["digits_cnn"]
    emit_report("fig4_table1_digits", comparison.report())
    low, high = comparison.targets
    cmfl_low = comparison.best_saving("cmfl", low)
    assert cmfl_low is not None and cmfl_low > 1.0
    cmfl_high = comparison.best_saving("cmfl", high)
    gaia_high = comparison.best_saving("gaia", high)
    # CMFL reaches the high target with fewer rounds than vanilla; and
    # whenever Gaia also reaches it, CMFL's saving is at least as good.
    assert cmfl_high is not None and cmfl_high > 1.0
    if gaia_high is not None:
        assert cmfl_high >= gaia_high * 0.95


def test_fig4_nwp(benchmark):
    result = benchmark.pedantic(
        fig4_table1.run,
        kwargs={"workloads": ["nwp_lstm"]},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    comparison = result.comparisons["nwp_lstm"]
    emit_report("fig4_table1_nwp", comparison.report())
    low, high = comparison.targets
    cmfl_high = comparison.best_saving("cmfl", high)
    gaia_high = comparison.best_saving("gaia", high)
    # The paper's NWP row: CMFL yields the largest saving; Gaia's best
    # threshold either stalls before the high-accuracy target or saves
    # far less than CMFL.  (cmfl_high may be inf when vanilla itself
    # never reaches the target within the bench budget but CMFL does.)
    assert cmfl_high is not None and cmfl_high > 1.2
    if gaia_high is not None:
        assert cmfl_high > gaia_high
