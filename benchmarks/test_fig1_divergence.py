"""Bench: Fig. 1 -- Normalized Model Divergence CDFs."""

from conftest import emit_report

from repro.experiments import fig1_divergence


def test_fig1_divergence(benchmark):
    result = benchmark.pedantic(
        fig1_divergence.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("fig1_divergence", result.report())
    for model in ("digits_cnn", "nwp_lstm"):
        stats = result.stats(model)
        # The paper's core finding: a non-trivial mass of parameters
        # diverges by more than 100% between client and global models
        # (our smaller/shorter federations show less mass than the
        # paper's >50%, but the heavy tail is unmistakable).
        assert stats["fraction_above_100pct"] > 0.02
        assert stats["max"] > 2.0
