"""Bench: Fig. 2 -- Gaia significance decays, CMFL relevance is stable."""

from conftest import emit_report

from repro.experiments import fig2_measures


def test_fig2_measures(benchmark):
    result = benchmark.pedantic(
        fig2_measures.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("fig2_measures", result.report())
    # Fig 2a: the magnitude measure decays substantially over training.
    assert result.significance_decay_factor() > 2.0
    # Fig 2b: the relevance measure stays within a narrow band.
    assert result.relevance_drift() < 0.15
