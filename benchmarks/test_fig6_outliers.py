"""Bench: Fig. 6 -- eliminations concentrate on divergent outlier clients."""

from conftest import emit_report

from repro.experiments import fig6_outliers


def test_fig6_outliers(benchmark):
    result = benchmark.pedantic(
        fig6_outliers.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("fig6_outliers", result.report())
    # The paper's 37/142 clients own 84.5% of eliminations; our top-26%
    # cut should own a clear majority too.
    assert result.elimination_share_of_outliers > 0.5
    # Frequent elimination is an effective outlier detector against the
    # generator's ground truth.
    precision, recall = result.detection_precision_recall()
    assert precision > 0.6
    assert recall > 0.6
