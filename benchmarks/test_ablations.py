"""Bench: design-choice ablations (threshold schedule, staleness,
Gaia granularity, per-layer relevance)."""

from conftest import emit_report

from repro.experiments import ablations


def test_ablations(benchmark):
    result = benchmark.pedantic(
        ablations.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("ablations", result.report())
    by_name = {r.name: r for r in result.schedule_runs}
    constant = by_name["constant(0.57)"].history
    inv_sqrt = by_name["inv-sqrt(0.8) [paper]"].history
    # The 1/sqrt(t) schedule drops under the relevance distribution
    # within a few rounds, after which it filters (almost) nothing --
    # its total uploads approach vanilla's; the constant schedule keeps
    # filtering.
    assert constant.final.accumulated_rounds < inv_sqrt.final.accumulated_rounds
    # Staleness: a 3-round-old feedback estimate still produces a
    # functioning run (Eq. 8 says global updates change slowly).
    for run in result.staleness_runs:
        assert len(run.history) > 0
    # Per-layer relevance was actually measured.
    assert len(result.layer_relevance) >= 4
