"""Bench: Sec. V-C -- relevance-check computational overhead."""

from conftest import emit_report

from repro.experiments import micro_overhead


def test_micro_overhead(benchmark):
    result = benchmark.pedantic(
        micro_overhead.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("micro_overhead", result.report())
    # The paper's claim: checking relevance costs <0.13% of one local
    # training iteration.
    assert result.overhead_fraction < 0.0013
