"""Bench: round throughput per execution backend + im2col micro-timing.

Writes the same sweep as ``tools/bench_timing.py`` (fewer rounds) and
asserts the engine's core contract: every backend produces a
bitwise-identical run history.
"""

from conftest import emit_report

from repro.experiments import timing


def test_timing(benchmark):
    payload = benchmark.pedantic(
        timing.run_timing,
        kwargs={"workers": 4, "rounds": 2, "warmup": 1},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    emit_report("timing", timing.format_report(payload))
    for workload, data in payload["workloads"].items():
        # The engine contract: backends differ only in wall-clock time.
        assert data["identical_histories"], (
            f"{workload}: backends diverged: "
            f"{ {b: e['history_digest'] for b, e in data['backends'].items()} }"
        )
        for backend, entry in data["backends"].items():
            assert entry["sec_per_round"] > 0.0, (workload, backend)
            assert entry["clients_per_sec"] > 0.0, (workload, backend)
    micro = payload["micro"]["im2col"]
    # The measurement behind dropping the unconditional
    # ascontiguousarray in im2col: the unfold already lands contiguous.
    assert micro["result_is_contiguous"]
    assert micro["strided_view_ms"] > 0.0
