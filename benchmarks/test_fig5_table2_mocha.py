"""Bench: Fig. 5 + Table II -- CMFL applied to federated MTL (MOCHA)."""

from conftest import emit_report

from repro.experiments import fig5_table2


def test_fig5_har(benchmark):
    comparison = benchmark.pedantic(
        fig5_table2.run_dataset,
        args=("har", "bench"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    emit_report("fig5_table2_har", comparison.report())
    # Communication shrinks...
    assert (comparison.cmfl.final.accumulated_rounds
            < comparison.vanilla.final.accumulated_rounds)
    # ... without hurting accuracy (the paper even sees a small gain).
    assert comparison.accuracy_ratio() > 0.97
    # Eliminations concentrate on the corrupted clients.
    assert comparison.skips_outliers > 2 * comparison.skips_clean


def test_fig5_semeion(benchmark):
    comparison = benchmark.pedantic(
        fig5_table2.run_dataset,
        args=("semeion", "bench"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    emit_report("fig5_table2_semeion", comparison.report())
    assert (comparison.cmfl.final.accumulated_rounds
            <= comparison.vanilla.final.accumulated_rounds)
    assert comparison.accuracy_ratio() > 0.95
