"""Bench: Fig. 7 -- cluster emulation and uploaded-byte accounting."""

from conftest import emit_report

from repro.experiments import fig7_ec2


def test_fig7_ec2(benchmark):
    result = benchmark.pedantic(
        fig7_ec2.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("fig7_ec2", result.report())
    vanilla = result.reports["vanilla"]
    cmfl = result.reports["cmfl"]
    # Fig 7b: CMFL ships substantially fewer full-update bytes overall.
    assert cmfl.uploaded_megabytes < vanilla.uploaded_megabytes
    # Data reduction at the levels both runs reached.
    reductions = [result.data_reduction(a) for a in result.levels]
    reached = [r for r in reductions if r is not None]
    assert reached and all(r > 1.0 for r in reached)
    # Sec V-C: the relevance check is a negligible slice of compute.
    assert cmfl.relevance_overhead_fraction() < 0.0013
