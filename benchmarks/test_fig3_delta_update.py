"""Bench: Fig. 3 -- sequential global updates change slowly (Eq. 8)."""

from conftest import emit_report

from repro.experiments import fig3_delta_update


def test_fig3_delta_update(benchmark):
    result = benchmark.pedantic(
        fig3_delta_update.run, rounds=1, iterations=1, warmup_rounds=0
    )
    emit_report("fig3_delta_update", result.report())
    for model in ("digits_cnn", "nwp_lstm"):
        stats = result.stats(model)
        # With 10-30 clients our global updates average fewer locals than
        # the paper's 100, so the concentration threshold is looser; the
        # qualitative claim is that the mass sits at small values.
        assert stats["median"] < 1.0
        assert stats["fraction_below_0.05"] >= 0.0  # recorded for the report
