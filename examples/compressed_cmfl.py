"""Combining CMFL with update compression (the paper's two levers).

The paper reduces *how many* updates are uploaded and cites structured/
sketched updates -- which reduce *how many bits each costs* -- as the
orthogonal approach.  This example composes both and surfaces a real
interaction the composition exposes: lossy codecs add a noise floor to
the aggregated feedback, and once that floor swamps the small-magnitude
coordinates, CMFL's sign-alignment relevance degrades toward a coin
flip and over-filters.  Compression composes cleanly with vanilla FL;
composing it with CMFL requires either high-fidelity codecs or a
noise-aware relevance variant.

Run:  python examples/compressed_cmfl.py        (~1 minute)
"""

from repro import CMFLPolicy, VanillaPolicy
from repro.compress import CompressionPipeline, QuantizationCodec, TopKSparsifier
from repro.core.thresholds import ConstantThreshold

from quickstart import build_trainer


def run(name, policy):
    trainer = build_trainer(policy)
    history = trainer.run()
    accs = [r.test_metric for r in history if r.test_metric is not None]
    row = f"{name:<24} Phi={history.final.accumulated_rounds:>4}  acc={accs[-1]:.3f}"
    if isinstance(policy, CompressionPipeline):
        row += (f"  shipped={policy.stats.uploaded_bytes / 1e3:7.1f} kB"
                f"  (x{policy.stats.compression_ratio:.1f} vs raw,"
                f" err {policy.stats.mean_relative_error:.4f})")
    print(row)


def main():
    run("vanilla", VanillaPolicy())
    run("vanilla + 8-bit quant", CompressionPipeline(
        VanillaPolicy(), QuantizationCodec(bits=8, rng=1)))
    run("vanilla + top-25% sparse", CompressionPipeline(
        VanillaPolicy(), TopKSparsifier(fraction=0.25)))
    run("cmfl (raw updates)", CMFLPolicy(ConstantThreshold(0.55)))
    # The interaction: quantization noise in the feedback degrades the
    # sign-alignment signal and CMFL over-filters.
    run("cmfl + 8-bit quant", CompressionPipeline(
        CMFLPolicy(ConstantThreshold(0.55)), QuantizationCodec(bits=8, rng=1)))


if __name__ == "__main__":
    main()
