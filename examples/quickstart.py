"""Quickstart: federated digit recognition with and without CMFL.

Builds a small non-IID federation (every client holds only two digit
classes), trains it once with vanilla federated learning and once with
CMFL's relevance filtering, and prints the communication ledger --
the accumulated communication rounds Phi the paper minimises.

Run:  python examples/quickstart.py        (~1 minute)
"""

import numpy as np

from repro import CMFLPolicy, FLConfig, FederatedTrainer, VanillaPolicy
from repro.utils.ascii_plot import ascii_plot
from repro.core.thresholds import ConstantThreshold
from repro.data import label_shard_partition, make_digit_dataset
from repro.fl import FLClient, ModelWorkspace
from repro.models import make_digits_cnn
from repro.nn import SGD, SoftmaxCrossEntropy, accuracy
from repro.nn.schedules import InverseSqrtLR
from repro.utils.rng import child_rngs

N_CLIENTS = 12
ROUNDS = 15


def build_trainer(policy, seed=7):
    """A fresh federation (same data and initial model for any policy)."""
    rngs = child_rngs(seed, N_CLIENTS + 4)
    train = make_digit_dataset(N_CLIENTS * 40, rng=rngs[0], image_size=20)
    test = make_digit_dataset(200, rng=rngs[1], image_size=20)

    # The paper's non-IID split: sort by label, one shard per client.
    partition = label_shard_partition(
        train.y, N_CLIENTS, shards_per_client=2, rng=rngs[2]
    )
    model = make_digits_cnn(image_size=20, channels=(4, 8), hidden=32,
                            rng=rngs[3])
    workspace = ModelWorkspace(
        model, SoftmaxCrossEntropy(), SGD(model.parameters(), 0.12),
        metric=accuracy,
    )
    clients = [
        FLClient(i, train.subset(part), rng=rngs[4 + i])
        for i, part in enumerate(partition)
    ]
    config = FLConfig(
        rounds=ROUNDS, local_epochs=2, batch_size=5,
        lr=InverseSqrtLR(0.12), eval_every=3,
    )
    return FederatedTrainer(
        workspace, clients, policy, config,
        eval_fn=lambda w: w.evaluate(test.x, test.y),
    )


def main():
    print(f"Federation: {N_CLIENTS} clients, {ROUNDS} rounds\n")
    curves = {}
    for name, policy in (
        ("vanilla", VanillaPolicy()),
        ("cmfl", CMFLPolicy(ConstantThreshold(0.55))),
    ):
        history = build_trainer(policy).run()
        accs = [r.test_metric for r in history if r.test_metric is not None]
        uploads = np.mean([r.n_uploaded for r in history])
        _, comm, acc = history.evaluated_points()
        curves[name] = (comm, acc)
        print(f"== {name}")
        print(f"   accumulated communication rounds (Phi): "
              f"{history.final.accumulated_rounds}")
        print(f"   mean uploads per round: {uploads:.1f} / {N_CLIENTS}")
        print(f"   final test accuracy: {accs[-1]:.3f}\n")

    # The Fig. 4 view: accuracy against accumulated communication rounds.
    print(ascii_plot(curves, x_label="accumulated comm rounds (Phi)",
                     y_label="test accuracy"))


if __name__ == "__main__":
    main()
