"""Writing your own upload policy.

The engine treats upload filtering as a pluggable policy: anything with
a ``decide(update, ctx) -> UploadDecision`` method works.  This example
implements a hybrid policy -- upload iff the update is *both* relevant
(CMFL's sign alignment) *and* significant (Gaia's magnitude) -- and
compares it against its two parents on the quickstart federation.

Run:  python examples/custom_policy.py        (~2 minutes)
"""

from repro import CMFLPolicy, GaiaPolicy
from repro.baselines.gaia import gaia_significance
from repro.core.policy import PolicyContext, UploadDecision, UploadPolicy
from repro.core.relevance import relevance
from repro.core.thresholds import ConstantThreshold

from quickstart import build_trainer


class HybridPolicy(UploadPolicy):
    """Upload only updates that are aligned AND non-negligible."""

    name = "hybrid"

    def __init__(self, relevance_threshold: float, magnitude_threshold: float):
        self.relevance_threshold = relevance_threshold
        self.magnitude_threshold = magnitude_threshold

    def decide(self, update, ctx: PolicyContext) -> UploadDecision:
        rel = relevance(update, ctx.global_update_estimate)
        sig = gaia_significance(update, ctx.global_params)
        upload = (rel >= self.relevance_threshold
                  and sig >= self.magnitude_threshold)
        return UploadDecision(upload=upload, score=rel,
                              threshold=self.relevance_threshold)


def main():
    policies = {
        "cmfl": CMFLPolicy(ConstantThreshold(0.55)),
        "gaia": GaiaPolicy(ConstantThreshold(0.05)),
        "hybrid": HybridPolicy(0.55, 0.02),
    }
    print(f"{'policy':<8} {'Phi':>6} {'final acc':>10}")
    for name, policy in policies.items():
        history = build_trainer(policy).run()
        accs = [r.test_metric for r in history if r.test_metric is not None]
        print(f"{name:<8} {history.final.accumulated_rounds:>6} "
              f"{accs[-1]:>10.3f}")


if __name__ == "__main__":
    main()
