"""Master/slave cluster emulation with byte-level accounting (Sec. V-C).

Replays a federated run through the discrete-event cluster emulator --
the stand-in for the paper's 30-node EC2 testbed -- and prints the
per-message-kind traffic breakdown, simulated wall-clock, and the
relevance-check overhead.  Also shows the mobile-link sensitivity the
paper motivates (edge devices with slow uplinks).

Run:  python examples/cluster_emulation.py        (~1 minute)
"""

from repro import CMFLPolicy, VanillaPolicy
from repro.core.thresholds import ConstantThreshold
from repro.emu import ClusterEmulator, LinkModel
from repro.emu.network import MOBILE_LINK

from quickstart import ROUNDS, build_trainer


def emulate(name, policy, link):
    trainer = build_trainer(policy)
    emulator = ClusterEmulator(trainer, link=link,
                               feedback_in_broadcast=name != "vanilla")
    report = emulator.run(ROUNDS)
    print(f"== {name} over {link.bandwidth_bps / 1e6:.0f} Mbit/s links")
    for kind, nbytes in sorted(report.bytes_by_kind.items()):
        print(f"   {kind:<16} {nbytes / 1e6:8.2f} MB")
    print(f"   simulated wall-clock: {report.simulated_seconds:8.1f} s")
    print(f"   relevance-check overhead: "
          f"{report.relevance_overhead_fraction():.6f} "
          "(paper: <0.0013)\n")
    return report


def main():
    ec2 = LinkModel()  # the default approximates the paper's EC2 cluster
    vanilla = emulate("vanilla", VanillaPolicy(), ec2)
    cmfl = emulate("cmfl", CMFLPolicy(ConstantThreshold(0.55)), ec2)
    print(f"Upstream full-update traffic: vanilla "
          f"{vanilla.uploaded_megabytes:.2f} MB vs CMFL "
          f"{cmfl.uploaded_megabytes:.2f} MB "
          f"({vanilla.uploaded_megabytes / cmfl.uploaded_megabytes:.2f}x)\n")

    # What the same protocol costs on a real phone's uplink.
    emulate("cmfl-on-mobile", CMFLPolicy(ConstantThreshold(0.55)), MOBILE_LINK)


if __name__ == "__main__":
    main()
