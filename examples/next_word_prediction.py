"""Next-word prediction across speaking roles (the paper's Gboard story).

Each client is one "speaking role" with its own topical vocabulary --
the extreme non-IID regime where the paper reports its biggest saving
(13.97x).  This example trains the 2-layer LSTM federation with CMFL
and shows the per-round relevance scores that drive upload decisions.

Run:  python examples/next_word_prediction.py        (~2 minutes)
"""

import numpy as np

from repro import CMFLPolicy, FLConfig, FederatedTrainer
from repro.core.thresholds import LinearDecayThreshold
from repro.data import make_dialogue_corpus
from repro.data.partition import group_partition
from repro.fl import FLClient, ModelWorkspace
from repro.models import make_nwp_lstm
from repro.nn import SGD, SoftmaxCrossEntropy, accuracy
from repro.nn.schedules import InverseSqrtLR
from repro.utils.rng import child_rngs

ROUNDS = 12


def main():
    rngs = child_rngs(11, 12)
    corpus = make_dialogue_corpus(
        n_roles=8, words_per_role=150, n_topics=6, words_per_topic=25,
        rng=rngs[0],
    )
    print(f"Corpus: {corpus.n_roles} roles, vocabulary {len(corpus.vocab)}, "
          f"{len(corpus.sequences)} ten-word windows")

    full = corpus.as_dataset()
    parts = group_partition(corpus.roles)
    model = make_nwp_lstm(len(corpus.vocab), embedding_dim=16, hidden=32,
                          rng=rngs[1])
    workspace = ModelWorkspace(
        model, SoftmaxCrossEntropy(), SGD(model.parameters(), 2.0),
        metric=accuracy,
    )
    clients = [FLClient(i, full.subset(p), rng=rngs[2 + i])
               for i, p in enumerate(parts)]
    config = FLConfig(rounds=ROUNDS, local_epochs=3, batch_size=8,
                      lr=InverseSqrtLR(2.0), eval_every=3)
    trainer = FederatedTrainer(
        workspace, clients,
        CMFLPolicy(LinearDecayThreshold(0.54, 0.48, ROUNDS)),
        config,
        eval_fn=lambda w: w.evaluate(full.x, full.y),
    )

    scores = []
    trainer.on_decision = lambda res, dec: scores.append(dec.score)
    print(f"\n{'round':>5} {'uploads':>8} {'Phi':>6} {'relevance':>18} "
          f"{'accuracy':>9}")
    for t in range(1, ROUNDS + 1):
        record = trainer.run_round(t)
        round_scores = scores[-len(clients):]
        acc = "" if record.test_metric is None else f"{record.test_metric:.3f}"
        print(f"{t:>5} {record.n_uploaded:>8} "
              f"{record.accumulated_rounds:>6} "
              f"{np.mean(round_scores):>8.3f} (thr {record.threshold:.3f}) "
              f"{acc:>9}")

    print(f"\nTotal uploads: {trainer.ledger.accumulated_rounds} "
          f"of {ROUNDS * len(clients)} possible "
          f"({trainer.ledger.total_megabytes():.2f} MB upstream)")


if __name__ == "__main__":
    main()
