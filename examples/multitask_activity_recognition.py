"""CMFL on federated multi-task learning (the paper's MOCHA experiment).

Forty clients each solve a personal sitting-vs-active classifier; a
quarter of them have corrupted training labels (the "outliers" of the
paper's Fig. 6).  CMFL's relevance check quietly filters exactly those
clients, saving uploads *and* keeping the shared base model clean.

Run:  python examples/multitask_activity_recognition.py       (seconds)
"""

import numpy as np

from repro import CMFLPolicy, VanillaPolicy
from repro.core.thresholds import ConstantThreshold
from repro.data import make_har_tasks
from repro.mtl import MochaTrainer, MTLConfig
from repro.mtl.relationship import task_similarity


def run(policy, tasks):
    config = MTLConfig(rounds=30, local_epochs=1, batch_size=5, lr=0.002,
                       personal_retention=0.5, eval_every=5, seed=1)
    trainer = MochaTrainer(tasks, policy, config)
    history = trainer.run()
    return trainer, history


def main():
    tasks = make_har_tasks(n_clients=40, n_features=120,
                           min_samples=10, max_samples=60, rng=0)
    n_outliers = sum(t.is_outlier for t in tasks)
    print(f"Tasks: {len(tasks)} clients, {n_outliers} with corrupted "
          "training labels\n")

    _, vanilla = run(VanillaPolicy(), tasks)
    tasks = make_har_tasks(n_clients=40, n_features=120,
                           min_samples=10, max_samples=60, rng=0)
    trainer, cmfl = run(CMFLPolicy(ConstantThreshold(0.53)), tasks)

    print(f"vanilla MOCHA : Phi={vanilla.final.accumulated_rounds:>5}  "
          f"final accuracy={vanilla.final.test_metric:.3f}")
    print(f"MOCHA + CMFL  : Phi={cmfl.final.accumulated_rounds:>5}  "
          f"final accuracy={cmfl.final.test_metric:.3f}\n")

    skips = np.asarray(trainer.ledger.elimination_counts(len(tasks)))
    outliers = np.asarray([t.is_outlier for t in tasks])
    print("Eliminated updates per client (paper Fig. 6):")
    print(f"  outlier clients : {skips[outliers].mean():5.1f} of 30 rounds")
    print(f"  clean clients   : {skips[~outliers].mean():5.1f} of 30 rounds")
    share = skips[outliers].sum() / max(skips.sum(), 1)
    print(f"  share of all eliminations owned by outliers: {share:.0%}")

    sim = task_similarity(trainer.base[:, None] + trainer.offsets)
    upper = sim[np.triu_indices_from(sim, k=1)]
    print(f"\nLearned task similarity: mean {upper.mean():.2f} "
          f"(min {upper.min():.2f}, max {upper.max():.2f})")


if __name__ == "__main__":
    main()
