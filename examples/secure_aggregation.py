"""CMFL under secure aggregation (privacy without losing the saving).

The paper's privacy argument is that clients upload only ephemeral
anonymous updates; its reference [15] (Bonawitz et al.) hides even
those behind pairwise masks that cancel in the server's sum.  CMFL
composes for free: the relevance check runs client-side on the *raw*
update, and only the updates that pass are masked and uploaded.

This example runs one federated round by hand: local training, the
relevance filter, pairwise masking, a mid-round dropout, and the
server-side unmasked aggregate -- then verifies the server recovered
exactly the mean of the surviving relevant updates without ever seeing
one in the clear.

Run:  python examples/secure_aggregation.py        (seconds)
"""

import numpy as np

from repro import CMFLPolicy
from repro.core.policy import PolicyContext
from repro.core.thresholds import ConstantThreshold
from repro.fl.secure import SecureAggregator

from quickstart import build_trainer


def main():
    trainer = build_trainer(CMFLPolicy(ConstantThreshold(0.45)))
    # Warm up a few rounds so a stable feedback estimate exists.
    trainer.run(4)
    global_params = trainer.server.global_params.copy()
    feedback = trainer.server.feedback

    # Every client trains and checks relevance locally (raw updates).
    relevant = {}
    for client in trainer.clients:
        result = client.compute_update(
            trainer.workspace, global_params, lr=0.08,
            local_epochs=2, batch_size=5,
        )
        ctx = PolicyContext(iteration=5, global_params=global_params,
                            global_update_estimate=feedback,
                            client_id=client.client_id)
        decision = trainer.policy.decide(result.update, ctx)
        if decision.upload:
            relevant[client.client_id] = result.update
    print(f"{len(relevant)} of {len(trainer.clients)} updates pass the "
          "relevance check")

    # The passing clients mask their updates pairwise.
    agg = SecureAggregator(list(relevant), n_params=global_params.size,
                           master_seed=99, mask_scale=2.0)
    dropped = list(relevant)[-1]
    for cid, update in relevant.items():
        masked = agg.mask_update(cid, update)
        corr = np.dot(masked, update) / (
            np.linalg.norm(masked) * np.linalg.norm(update))
        if cid == dropped:
            continue  # this device dies before uploading
        agg.submit(cid, masked)
        print(f"  client {cid:>2}: server-visible correlation with raw "
              f"update = {corr:+.3f}")

    print(f"client {dropped} dropped mid-round; unmasking its orphan masks")
    total, count = agg.aggregate()
    expected = np.mean(
        [u for cid, u in relevant.items() if cid != dropped], axis=0
    )
    error = np.max(np.abs(total / count - expected))
    print(f"server aggregate == plain mean of surviving updates "
          f"(max abs error {error:.2e})")


if __name__ == "__main__":
    main()
